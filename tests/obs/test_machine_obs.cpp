// Integration: the obs hub wired through a full machine run.
//
// The load-bearing property is inertness -- attaching metrics, a timeline,
// and the interval sampler must not move a single simulated event -- plus
// coverage: every instrument family the design promises (node CPU/memory,
// links, partitions, comm, kernel self-profile) shows up in the registry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/hub.h"

namespace tmc::core {
namespace {

ExperimentConfig tiny_config() {
  auto config = figure_point(workload::App::kMatMul,
                             sched::SoftwareArch::kAdaptive,
                             sched::PolicyKind::kHybrid, 4,
                             net::TopologyKind::kMesh);
  config.batch.small_size = 16;
  config.batch.large_size = 32;
  return config;
}

obs::Options full_options() {
  obs::Options options;
  options.metrics = true;
  options.timeline_path = "unused.json";  // presence arms the timeline
  return options;
}

bool has_metric(const std::vector<obs::Registry::View>& views,
                const std::string& name) {
  return std::any_of(views.begin(), views.end(),
                     [&name](const auto& v) { return v.name == name; });
}

TEST(MachineObs, FullInstrumentationIsInert) {
  const auto config = tiny_config();
  const auto plain = run_batch(config, workload::BatchOrder::kInterleaved);

  obs::Hub hub(full_options());
  auto observed_config = config;
  observed_config.machine.obs = &hub;
  const auto observed =
      run_batch(observed_config, workload::BatchOrder::kInterleaved);

  // Byte-level determinism claim: same events, same clock, same responses.
  EXPECT_EQ(plain.machine.events, observed.machine.events);
  EXPECT_EQ(plain.machine.messages, observed.machine.messages);
  EXPECT_EQ(plain.machine.context_switches, observed.machine.context_switches);
  EXPECT_DOUBLE_EQ(plain.makespan_s, observed.makespan_s);
  ASSERT_EQ(plain.jobs.size(), observed.jobs.size());
  for (std::size_t i = 0; i < plain.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(plain.jobs[i].response_s, observed.jobs[i].response_s);
    EXPECT_DOUBLE_EQ(plain.jobs[i].wait_s, observed.jobs[i].wait_s);
  }

  // And the observed run actually recorded something.
  EXPECT_GT(hub.registry().size(), 0u);
  ASSERT_NE(hub.timeline(), nullptr);
  EXPECT_FALSE(hub.timeline()->records().empty());
}

TEST(MachineObs, RegistryCoversEveryInstrumentFamily) {
  obs::Hub hub(full_options());
  auto config = tiny_config();
  config.machine.obs = &hub;
  (void)run_batch(config, workload::BatchOrder::kInterleaved);

  const auto views = hub.registry().snapshot();
  // Kernel self-profile.
  EXPECT_TRUE(has_metric(views, "kernel.events_fired"));
  EXPECT_TRUE(has_metric(views, "kernel.pending_peak"));
  // Scheduling hierarchy.
  EXPECT_TRUE(has_metric(views, "sched.completed"));
  EXPECT_TRUE(has_metric(views, "partition0.active_jobs"));
  EXPECT_TRUE(has_metric(views, "partition3.gang_switches"));
  // Per-node CPU and memory (all 16 nodes registered).
  EXPECT_TRUE(has_metric(views, "node0.cpu.utilization"));
  EXPECT_TRUE(has_metric(views, "node15.cpu.context_switches"));
  EXPECT_TRUE(has_metric(views, "node0.mem.alloc_waits"));
  EXPECT_TRUE(has_metric(views, "node0.mem.grant_wait_s"));
  // Links and comm.
  EXPECT_TRUE(has_metric(views, "link0.transfers"));
  EXPECT_TRUE(has_metric(views, "link0.utilization"));
  EXPECT_TRUE(has_metric(views, "net.parks"));
  EXPECT_TRUE(has_metric(views, "comm.sends"));
  EXPECT_TRUE(has_metric(views, "comm.mailbox_pending"));

  // A frozen probe must carry the run's final value.
  const auto it = std::find_if(views.begin(), views.end(), [](const auto& v) {
    return v.name == "kernel.events_fired";
  });
  ASSERT_NE(it, views.end());
  EXPECT_GT(it->value, 0.0);
}

TEST(MachineObs, WormholeRunRegistersPoolMetrics) {
  obs::Options options;
  options.metrics = true;
  obs::Hub hub(options);
  auto config = tiny_config();
  config.machine.wormhole = true;
  config.machine.obs = &hub;
  (void)run_batch(config, workload::BatchOrder::kInterleaved);
  const auto views = hub.registry().snapshot();
  EXPECT_TRUE(has_metric(views, "net.worm_peak"));
  EXPECT_TRUE(has_metric(views, "net.worm_pool_capacity"));
}

TEST(MachineObs, TimelineHasPerComponentTracksAndRecords) {
  obs::Hub hub(full_options());
  auto config = tiny_config();
  config.machine.obs = &hub;
  (void)run_batch(config, workload::BatchOrder::kInterleaved);

  const obs::Timeline& tl = *hub.timeline();
  int nodes = 0, links = 0, partitions = 0;
  for (const auto& track : tl.tracks()) {
    nodes += track.kind == obs::TrackKind::kNode;
    links += track.kind == obs::TrackKind::kLink;
    partitions += track.kind == obs::TrackKind::kPartition;
  }
  EXPECT_EQ(nodes, 16);
  EXPECT_GT(links, 0);
  EXPECT_EQ(partitions, 4);

  bool saw_span = false, saw_sample = false;
  for (const auto& r : tl.records()) {
    saw_span |= r.kind == obs::RecordKind::kSpan;
    saw_sample |= r.kind == obs::RecordKind::kSample;
  }
  EXPECT_TRUE(saw_span);    // CPU charges / link transfers
  EXPECT_TRUE(saw_sample);  // interval sampler output
}

TEST(MachineObs, JobSpansAndFlowsRecordWhenTimelineArmed) {
  obs::Hub hub(full_options());
  auto config = tiny_config();
  config.machine.job_class_names = {"small", "large"};
  config.machine.obs = &hub;
  (void)run_batch(config, workload::BatchOrder::kInterleaved);

  const obs::Timeline& tl = *hub.timeline();
  int job_tracks = 0;
  for (const auto& track : tl.tracks()) {
    job_tracks += track.kind == obs::TrackKind::kJob;
  }
  EXPECT_EQ(job_tracks, 2);  // one per declared class

  // Async job spans balance begin/end; message flows pair start/finish
  // with matching ids (the cross-node arrows in Perfetto).
  int async_depth = 0;
  std::size_t async_pairs = 0;
  std::vector<std::uint64_t> flow_open;
  std::size_t flow_pairs = 0;
  for (const auto& r : tl.records()) {
    switch (r.kind) {
      case obs::RecordKind::kAsyncBegin:
        ++async_depth;
        break;
      case obs::RecordKind::kAsyncEnd:
        --async_depth;
        ASSERT_GE(async_depth, 0);
        ++async_pairs;
        break;
      case obs::RecordKind::kFlowStart:
        flow_open.push_back(r.id);
        break;
      case obs::RecordKind::kFlowFinish: {
        const auto it =
            std::find(flow_open.begin(), flow_open.end(), r.id);
        ASSERT_NE(it, flow_open.end()) << "flow finish without start";
        flow_open.erase(it);
        ++flow_pairs;
        break;
      }
      default:
        break;
    }
  }
  EXPECT_EQ(async_depth, 0);
  EXPECT_GT(async_pairs, 0u);
  EXPECT_GT(flow_pairs, 0u);
  EXPECT_TRUE(flow_open.empty());
}

TEST(MachineObs, NoJobTrackerWithoutTimeline) {
  // Metrics alone must not create the per-job layer (it exists only to
  // feed timeline tracks).
  obs::Options options;
  options.metrics = true;
  obs::Hub hub(options);
  auto config = tiny_config();
  config.machine.obs = &hub;
  (void)run_batch(config, workload::BatchOrder::kInterleaved);
  EXPECT_EQ(hub.timeline(), nullptr);
}

TEST(MachineObs, TraceLinesLandOnTimelineAsAnnotations) {
  obs::Hub hub(full_options());
  auto config = tiny_config();
  config.machine.obs = &hub;

  Multicomputer machine(config.machine);
  auto specs = workload::make_batch(config.batch,
                                    workload::BatchOrder::kInterleaved);
  std::vector<std::unique_ptr<sched::Job>> jobs;
  sched::JobId next_id = 1;
  for (auto& spec : specs) {
    jobs.push_back(std::make_unique<sched::Job>(next_id++, std::move(spec)));
  }
  machine.enable_tracing(static_cast<unsigned>(sim::TraceCategory::kCpu),
                         [](std::string_view) {});
  for (auto& job : jobs) machine.submit(*job);
  machine.run_to_completion();

  EXPECT_FALSE(hub.timeline()->annotations().empty());
}

TEST(MachineObs, SecondaryRunsDetachFromTheHub) {
  obs::Hub hub(full_options());
  auto config = tiny_config();
  config.machine.policy.kind = sched::PolicyKind::kStatic;
  config.machine.obs = &hub;
  // Space-shared: run_experiment runs best and worst orders; only the
  // primary may touch the hub, so this must not throw or double-register.
  const auto result = run_experiment(config);
  ASSERT_TRUE(result.worst.has_value());
  EXPECT_GT(hub.registry().size(), 0u);
}

}  // namespace
}  // namespace tmc::core
