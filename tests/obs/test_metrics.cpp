#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace tmc::obs {
namespace {

TEST(Registry, GetOrCreateReturnsStableHandles) {
  Registry reg;
  Counter* a = reg.counter("events");
  Counter* b = reg.counter("events");
  EXPECT_EQ(a, b);
  a->inc(3);
  EXPECT_EQ(b->value, 3u);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Registry, HandlesSurviveLaterRegistrations) {
  // Deque-backed storage: registering hundreds more instruments must not
  // invalidate earlier handles (a vector would reallocate).
  Registry reg;
  Counter* first = reg.counter("first");
  for (int i = 0; i < 500; ++i) {
    reg.counter("c" + std::to_string(i));
  }
  first->inc();
  EXPECT_EQ(reg.counter("first")->value, 1u);
}

TEST(Registry, KindMismatchThrows) {
  Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.distribution("x"), std::logic_error);
  EXPECT_THROW(reg.probe("x", [] { return 0.0; }), std::logic_error);
}

TEST(Registry, DistributionRecordsStatsAndHistogram) {
  Registry reg;
  Distribution* d = reg.distribution("lat", 0.0, 10.0, 10);
  d->add(1.5);
  d->add(2.5);
  d->add(42.0);  // clamps into the top bin, counted as overflow
  EXPECT_EQ(d->stats().count(), 3u);
  ASSERT_TRUE(d->histogram().has_value());
  EXPECT_EQ(d->histogram()->overflow(), 1u);
}

TEST(Registry, NullHandleHelpersAreNoOps) {
  bump(nullptr);
  set(nullptr, 1.0);
  observe(nullptr, 1.0);
  Counter c;
  bump(&c, 2);
  EXPECT_EQ(c.value, 2u);
  Gauge g;
  set(&g, 4.5);
  EXPECT_DOUBLE_EQ(g.value, 4.5);
  Distribution d;
  observe(&d, 7.0);
  EXPECT_EQ(d.stats().count(), 1u);
}

TEST(Registry, FreezeProbesCapturesValueAndDropsClosure) {
  Registry reg;
  double source = 1.0;
  reg.probe("level", [&source] { return source; });
  source = 5.0;
  reg.freeze_probes();
  source = 99.0;  // must not be visible after the freeze
  const auto views = reg.snapshot();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0].kind, Registry::Kind::kProbe);
  EXPECT_DOUBLE_EQ(views[0].value, 5.0);
  // Idempotent: a second freeze keeps the frozen value.
  reg.freeze_probes();
  EXPECT_DOUBLE_EQ(reg.snapshot()[0].value, 5.0);
}

TEST(Registry, SnapshotEvaluatesUnfrozenProbesInPlace) {
  Registry reg;
  double source = 2.0;
  reg.probe("level", [&source] { return source; });
  EXPECT_DOUBLE_EQ(reg.snapshot()[0].value, 2.0);
  source = 3.0;
  EXPECT_DOUBLE_EQ(reg.snapshot()[0].value, 3.0);
}

TEST(Registry, SnapshotPreservesRegistrationOrder) {
  Registry reg;
  reg.counter("b")->inc(1);
  reg.gauge("a")->set(2.0);
  reg.distribution("c")->add(3.0);
  const auto views = reg.snapshot();
  ASSERT_EQ(views.size(), 3u);
  EXPECT_EQ(views[0].name, "b");
  EXPECT_EQ(views[0].count, 1u);
  EXPECT_EQ(views[1].name, "a");
  EXPECT_DOUBLE_EQ(views[1].value, 2.0);
  EXPECT_EQ(views[2].name, "c");
  ASSERT_NE(views[2].distribution, nullptr);
  EXPECT_EQ(views[2].distribution->stats().count(), 1u);
}

}  // namespace
}  // namespace tmc::obs
