#include "obs/sampler.h"

#include <gtest/gtest.h>

#include "obs/timeline.h"

namespace tmc::obs {
namespace {

using sim::SimTime;

TEST(Sampler, InactiveUntilConfiguredWithChannels) {
  Sampler s;
  EXPECT_FALSE(s.active());
  Timeline tl;
  s.configure(&tl, SimTime::milliseconds(10));
  EXPECT_FALSE(s.active());  // no channels yet
  s.add_channel([] { return 1.0; }, 0, 0);
  EXPECT_TRUE(s.active());
  s.configure(nullptr, SimTime::milliseconds(10));
  EXPECT_FALSE(s.active());
}

TEST(Sampler, AdvanceEmitsTicksStrictlyBelowHorizon) {
  Timeline tl;
  const TrackId t = tl.add_track(TrackKind::kGlobal, "machine");
  const NameId n = tl.intern("depth");
  Sampler s;
  s.configure(&tl, SimTime::milliseconds(10));
  s.add_channel([] { return 4.0; }, t, n);

  // Horizon exactly on a tick: that tick belongs to the NEXT advance, so
  // samples at an event instant land on the pre-event side.
  s.advance_to(SimTime::milliseconds(30));
  ASSERT_EQ(tl.records().size(), 3u);  // t = 0, 10, 20
  EXPECT_EQ(tl.records()[0].start_ns, 0);
  EXPECT_EQ(tl.records()[2].start_ns, 20'000'000);

  s.advance_to(SimTime::milliseconds(31));
  ASSERT_EQ(tl.records().size(), 4u);  // t = 30
  EXPECT_EQ(tl.records()[3].start_ns, 30'000'000);
  EXPECT_DOUBLE_EQ(tl.records()[3].value, 4.0);
}

TEST(Sampler, MultipleChannelsSampleAtEachTick) {
  Timeline tl;
  const TrackId t = tl.add_track(TrackKind::kGlobal, "machine");
  Sampler s;
  s.configure(&tl, SimTime::milliseconds(5));
  s.add_channel([] { return 1.0; }, t, tl.intern("a"));
  s.add_channel([] { return 2.0; }, t, tl.intern("b"));
  s.advance_to(SimTime::milliseconds(6));  // ticks at 0 and 5
  EXPECT_EQ(tl.records().size(), 4u);
}

TEST(Sampler, FinishTakesFinalSampleAndDropsChannels) {
  Timeline tl;
  const TrackId t = tl.add_track(TrackKind::kGlobal, "machine");
  const NameId n = tl.intern("depth");
  int live = 0;
  {
    Sampler s;
    s.configure(&tl, SimTime::milliseconds(10));
    s.add_channel(
        [&live] {
          ++live;
          return 1.0;
        },
        t, n);
    s.finish(SimTime::milliseconds(42));
    EXPECT_FALSE(s.active());
    // advance_to after finish must not re-poll the (dropped) closure.
    s.advance_to(SimTime::seconds(1));
  }
  EXPECT_EQ(live, 1);
  ASSERT_EQ(tl.records().size(), 1u);
  EXPECT_EQ(tl.records()[0].start_ns, 42'000'000);
}

}  // namespace
}  // namespace tmc::obs
