// Unit: --slo spec parsing and the SLO tracker's streaming arithmetic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/slo.h"

namespace tmc::obs {
namespace {

std::vector<SloTarget> parse_ok(const std::string& spec) {
  std::vector<SloTarget> out;
  std::string error;
  EXPECT_TRUE(parse_slo_spec(spec, out, error)) << spec << ": " << error;
  EXPECT_TRUE(error.empty()) << error;
  return out;
}

std::string parse_err(const std::string& spec) {
  std::vector<SloTarget> out;
  std::string error;
  EXPECT_FALSE(parse_slo_spec(spec, out, error)) << spec;
  EXPECT_FALSE(error.empty()) << spec;
  return error;
}

TEST(SloSpec, ParsesEverySuffixAndBareSeconds) {
  const auto targets =
      parse_ok("a=250ns,b=40us,c=50ms,d=2s,e=0.75");
  ASSERT_EQ(targets.size(), 5u);
  EXPECT_DOUBLE_EQ(targets[0].target_s, 250e-9);
  EXPECT_DOUBLE_EQ(targets[1].target_s, 40e-6);
  EXPECT_DOUBLE_EQ(targets[2].target_s, 50e-3);
  EXPECT_DOUBLE_EQ(targets[3].target_s, 2.0);
  EXPECT_DOUBLE_EQ(targets[4].target_s, 0.75);
  for (const auto& t : targets) {
    EXPECT_DOUBLE_EQ(t.objective, 0.99);  // default objective
  }
  EXPECT_EQ(targets[0].job_class, "a");
  EXPECT_EQ(targets[4].job_class, "e");
}

TEST(SloSpec, ParsesExplicitObjectivePercent) {
  const auto targets = parse_ok("interactive=50ms@99.9,batch=2s@95");
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_DOUBLE_EQ(targets[0].objective, 0.999);
  EXPECT_DOUBLE_EQ(targets[1].objective, 0.95);
}

TEST(SloSpec, RejectsMalformedEntries) {
  (void)parse_err("");                       // empty spec
  (void)parse_err("interactive");            // no '='
  (void)parse_err("interactive=");           // no latency
  (void)parse_err("=50ms");                  // no class name
  (void)parse_err("interactive=-50ms");      // negative latency
  (void)parse_err("interactive=0");          // zero latency
  (void)parse_err("interactive=50xs");       // unknown suffix
  (void)parse_err("interactive=50ms@0");     // objective out of range
  (void)parse_err("interactive=50ms@100");   // objective out of range
  (void)parse_err("a=1s,a=2s");              // duplicate class
}

TEST(SloTracker, AttainmentStartsAtOneAndTracksMetFraction) {
  SloTracker tracker({{"fast", 0.1, 0.99}});
  ASSERT_EQ(tracker.size(), 1u);
  EXPECT_DOUBLE_EQ(tracker.attainment(0), 1.0);  // before any completion

  tracker.record(0, 0.05, 1.0);   // met (at target counts as met)
  tracker.record(0, 0.10, 1.0);   // met
  tracker.record(0, 0.20, 2.0);   // missed
  tracker.record(0, 0.30, 3.0);   // missed
  EXPECT_EQ(tracker.classes()[0].completed, 4u);
  EXPECT_EQ(tracker.classes()[0].met, 2u);
  EXPECT_DOUBLE_EQ(tracker.attainment(0), 0.5);
}

TEST(SloTracker, BudgetBurnIsMissRateOverAllowedMissRate) {
  SloTracker tracker({{"x", 1.0, 0.9}});  // allowed miss rate 0.1
  for (int i = 0; i < 8; ++i) tracker.record(0, 0.5, 1.0);  // met
  for (int i = 0; i < 2; ++i) tracker.record(0, 2.0, 4.0);  // missed
  // Miss rate 0.2 against an allowed 0.1: burning budget at 2x.
  EXPECT_NEAR(tracker.budget_burn(0), 2.0, 1e-12);
  // All-met class burns nothing.
  SloTracker calm({{"y", 1.0, 0.99}});
  calm.record(0, 0.1, 1.0);
  EXPECT_DOUBLE_EQ(calm.budget_burn(0), 0.0);
}

TEST(SloTracker, IndexOfFindsTargetsByClassName) {
  SloTracker tracker({{"interactive", 0.05, 0.99}, {"batch", 2.0, 0.95}});
  EXPECT_EQ(tracker.index_of("interactive"), 0);
  EXPECT_EQ(tracker.index_of("batch"), 1);
  EXPECT_EQ(tracker.index_of("analytics"), -1);
  EXPECT_EQ(SloTracker().index_of("interactive"), -1);
}

TEST(SloTracker, StretchQuantilesStream) {
  SloTracker tracker({{"x", 10.0, 0.99}});
  for (int i = 1; i <= 100; ++i) {
    tracker.record(0, 0.001 * i, static_cast<double>(i));
  }
  // P^2 estimates: exactness is not the contract, the ballpark is.
  const auto& q = tracker.classes()[0].stretch_q;
  EXPECT_NEAR(q.p50.value(), 50.0, 10.0);
  EXPECT_GT(q.p99.value(), q.p50.value());
}

}  // namespace
}  // namespace tmc::obs
