// Streaming obs sinks vs the buffered exporters.
//
// The sustained-serving mode cannot buffer a million-job timeline, so the
// hub drains records to disk in chunks and/or streams sampler ticks as
// JSONL. The load-bearing claim is equivalence: a chunked drain, fully
// flushed, must produce the *same bytes* as the buffered exporter on the
// same run -- both drive the one ChromeTraceWriter -- and the JSONL stream
// must carry exactly the sampler's channel values. These tests run a real
// machine twice and diff the files.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/export.h"
#include "obs/hub.h"

namespace tmc::core {
namespace {

ExperimentConfig tiny_config() {
  auto config = figure_point(workload::App::kMatMul,
                             sched::SoftwareArch::kAdaptive,
                             sched::PolicyKind::kHybrid, 4,
                             net::TopologyKind::kMesh);
  config.batch.small_size = 16;
  config.batch.large_size = 32;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(testing::TempDir() + name) {}
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Runs the tiny batch once with the given obs options; returns write_outputs
/// diagnostics.
std::string run_observed(const obs::Options& options) {
  obs::Hub hub(options);
  auto config = tiny_config();
  config.machine.obs = &hub;
  (void)run_batch(config, workload::BatchOrder::kInterleaved);
  std::ostringstream diag;
  EXPECT_TRUE(hub.write_outputs(diag)) << diag.str();
  return diag.str();
}

TEST(StreamSink, ChunkedTimelineIsByteIdenticalToBuffered) {
  const TempPath buffered("stream_sink_buffered.json");
  const TempPath chunked("stream_sink_chunked.json");

  obs::Options buffered_options;
  buffered_options.timeline_path = buffered.path();
  run_observed(buffered_options);

  // A deliberately awkward chunk size: records/7 leaves a tail smaller
  // than a chunk, so the final write_outputs drain is exercised too.
  obs::Options chunked_options;
  chunked_options.timeline_path = chunked.path();
  chunked_options.timeline_chunk = 7;
  const std::string diag = run_observed(chunked_options);

  const std::string expected = slurp(buffered.path());
  const std::string actual = slurp(chunked.path());
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(expected, actual);
  EXPECT_NE(diag.find("streamed"), std::string::npos) << diag;
}

TEST(StreamSink, ChunkedDrainKeepsTheBufferBounded) {
  const TempPath chunked("stream_sink_bounded.json");
  obs::Options options;
  options.timeline_path = chunked.path();
  options.timeline_chunk = 16;

  obs::Hub hub(options);
  auto config = tiny_config();
  config.machine.obs = &hub;
  (void)run_batch(config, workload::BatchOrder::kInterleaved);
  // Everything past the most recent partial chunk must already be on disk.
  EXPECT_LT(hub.track_registry().records().size(), 16u);
  EXPECT_GT(hub.track_registry().flushed_records(), 0u);
  std::ostringstream diag;
  ASSERT_TRUE(hub.write_outputs(diag)) << diag.str();
}

TEST(StreamSink, MetricsStreamWorksWithoutATimeline) {
  const TempPath stream("stream_sink_metrics.jsonl");
  obs::Options options;
  options.metrics_stream_path = stream.path();
  const std::string diag = run_observed(options);
  EXPECT_NE(diag.find("streamed"), std::string::npos) << diag;

  std::ifstream in(stream.path());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  // Header names the schema and every channel ("track:channel" labels).
  EXPECT_NE(line.find("tmc-metrics-stream-v1"), std::string::npos);
  EXPECT_NE(line.find("node0:ready"), std::string::npos);
  EXPECT_NE(line.find("machine:pending_events"), std::string::npos);
  std::size_t ticks = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.find("{\"t_s\":"), 0u) << line;
    ++ticks;
  }
  EXPECT_GT(ticks, 0u);
}

TEST(StreamSink, StreamAndTimelineTogetherAgreeOnSampleValues) {
  const TempPath stream("stream_sink_both.jsonl");
  const TempPath timeline("stream_sink_both_timeline.json");
  obs::Options options;
  options.metrics_stream_path = stream.path();
  options.timeline_path = timeline.path();
  run_observed(options);

  // Count kSample counter events in the trace; the JSONL must have the
  // same total (ticks x channels).
  const std::string trace = slurp(timeline.path());
  std::size_t samples = 0;
  for (std::size_t pos = trace.find("\"ph\":\"C\""); pos != std::string::npos;
       pos = trace.find("\"ph\":\"C\"", pos + 1)) {
    ++samples;
  }
  std::ifstream in(stream.path());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  const std::size_t list_start = header.find("\"channels\":[");
  ASSERT_NE(list_start, std::string::npos);
  std::size_t channels = 1;  // n separators between n+1 channel strings
  for (std::size_t pos = header.find("\",\"", list_start);
       pos != std::string::npos; pos = header.find("\",\"", pos + 1)) {
    ++channels;
  }
  std::size_t ticks = 0;
  std::string line;
  while (std::getline(in, line)) ++ticks;
  EXPECT_GT(ticks, 0u);
  EXPECT_EQ(samples, ticks * channels);
}

TEST(StreamSink, MetricsStreamWriterEscapesAndCounts) {
  std::ostringstream os;
  obs::MetricsStreamWriter writer(os);
  writer.set_label("a\"b");
  writer.begin({"x", "y"});
  writer.tick(0.5, {1.0, 2.5});
  writer.tick(1.0, {3.0, 4.0});
  EXPECT_EQ(writer.ticks(), 2u);
  EXPECT_EQ(os.str(),
            "{\"schema\":\"tmc-metrics-stream-v1\",\"label\":\"a\\\"b\","
            "\"channels\":[\"x\",\"y\"]}\n"
            "{\"t_s\":0.5,\"v\":[1,2.5]}\n"
            "{\"t_s\":1,\"v\":[3,4]}\n");
}

}  // namespace
}  // namespace tmc::core
