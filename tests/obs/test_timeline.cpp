#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace tmc::obs {
namespace {

using sim::SimTime;

TEST(Timeline, InternDeduplicatesNames) {
  Timeline tl;
  const NameId a = tl.intern("compute");
  const NameId b = tl.intern("compute");
  const NameId c = tl.intern("xfer");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(tl.name(a), "compute");
  EXPECT_EQ(tl.name(c), "xfer");
}

TEST(Timeline, RecordsCarryTrackNameAndKind) {
  Timeline tl;
  const TrackId node = tl.add_track(TrackKind::kNode, "node0");
  const NameId op = tl.intern("compute");
  tl.span(node, op, SimTime::microseconds(10), SimTime::microseconds(5), 7.0);
  tl.instant(node, op, SimTime::microseconds(20));
  tl.sample(node, op, SimTime::microseconds(30), 3.5);
  ASSERT_EQ(tl.records().size(), 3u);
  EXPECT_EQ(tl.records()[0].kind, RecordKind::kSpan);
  EXPECT_EQ(tl.records()[0].start_ns, 10000);
  EXPECT_EQ(tl.records()[0].dur_ns, 5000);
  EXPECT_DOUBLE_EQ(tl.records()[0].value, 7.0);
  EXPECT_EQ(tl.records()[1].kind, RecordKind::kInstant);
  EXPECT_EQ(tl.records()[2].kind, RecordKind::kSample);
  EXPECT_DOUBLE_EQ(tl.records()[2].value, 3.5);
}

TEST(ChromeTrace, EmitsProcessAndThreadMetadata) {
  Timeline tl;
  tl.add_track(TrackKind::kNode, "node0");
  tl.add_track(TrackKind::kLink, "link0 0->1");
  std::ostringstream os;
  write_chrome_trace(tl, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"nodes\""), std::string::npos);
  EXPECT_NE(json.find("\"links\""), std::string::npos);
  EXPECT_NE(json.find("node0"), std::string::npos);
  EXPECT_NE(json.find("link0 0->1"), std::string::npos);
}

TEST(ChromeTrace, SpanBecomesCompleteEventInMicroseconds) {
  Timeline tl;
  const TrackId t = tl.add_track(TrackKind::kNode, "node0");
  tl.span(t, tl.intern("compute"), SimTime::microseconds(10),
          SimTime::microseconds(4));
  std::ostringstream os;
  write_chrome_trace(tl, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":4"), std::string::npos);
}

TEST(ChromeTrace, SampleBecomesCounterQualifiedByTrack) {
  Timeline tl;
  const TrackId t = tl.add_track(TrackKind::kNode, "node3");
  tl.sample(t, tl.intern("ready"), SimTime::microseconds(100), 2.0);
  std::ostringstream os;
  write_chrome_trace(tl, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("node3:ready"), std::string::npos);
}

TEST(ChromeTrace, AnnotationsBecomeInstantEvents) {
  Timeline tl;
  const TrackId t = tl.add_track(TrackKind::kGlobal, "trace");
  tl.annotate(t, SimTime::microseconds(7), "[cpu] cpu0: \"dispatch\"");
  std::ostringstream os;
  write_chrome_trace(tl, os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  // Quotes in the freeform text must be escaped.
  EXPECT_NE(json.find("\\\"dispatch\\\""), std::string::npos);
}

TEST(MetricsExport, JsonCarriesSchemaAndAllKinds) {
  Registry reg;
  reg.counter("hits")->inc(3);
  reg.gauge("level")->set(0.5);
  reg.distribution("lat", 0.0, 1.0, 4)->add(0.3);
  reg.probe("depth", [] { return 2.0; });
  std::ostringstream os;
  write_metrics_json(reg, os, "unit-test", SimTime::seconds(2));
  const std::string json = os.str();
  EXPECT_NE(json.find("\"schema\":\"tmc-metrics-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"label\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"end_time_s\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"hits\",\"kind\":\"counter\",\"value\":3"),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"distribution\""), std::string::npos);
  EXPECT_NE(json.find("\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"probe\""), std::string::npos);
}

TEST(MetricsExport, CsvHasHeaderAndOneRowPerInstrument) {
  Registry reg;
  reg.counter("hits")->inc(3);
  reg.distribution("lat")->add(1.0);
  std::ostringstream os;
  write_metrics_csv(reg, os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("name,kind,count,value,mean,stddev,min,max\n"),
            std::string::npos);
  EXPECT_NE(csv.find("hits,counter,3,3"), std::string::npos);
  EXPECT_NE(csv.find("lat,distribution,1"), std::string::npos);
}

}  // namespace
}  // namespace tmc::obs
