#include "sched/adaptive_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/experiment.h"

namespace tmc::sched {
namespace {

using sim::SimTime;

/// Job whose width adapts to the allocated partition (exercises the
/// adaptive policy's whole point).
JobSpec adaptive_job(SimTime total_demand) {
  JobSpec spec;
  spec.app = "test-adaptive";
  spec.arch = SoftwareArch::kAdaptive;
  spec.demand_estimate = total_demand;
  spec.builder = [total_demand](const Job&, int partition_size) {
    std::vector<node::Program> programs(
        static_cast<std::size_t>(partition_size));
    const auto share =
        sim::SimTime::nanoseconds(total_demand.ns() / partition_size);
    for (auto& p : programs) p.compute(share).exit();
    return programs;
  };
  return spec;
}

core::MachineConfig adaptive_machine() {
  core::MachineConfig cfg;
  cfg.topology = net::TopologyKind::kMesh;
  cfg.policy.kind = PolicyKind::kAdaptiveStatic;
  return cfg;
}

TEST(AdaptiveScheduler, SoleJobGetsWholeMachine) {
  core::Multicomputer machine(adaptive_machine());
  auto* adaptive = machine.adaptive_scheduler();
  ASSERT_NE(adaptive, nullptr);
  Job job(1, adaptive_job(SimTime::milliseconds(160)));
  machine.submit(job);
  EXPECT_EQ(job.processes().size(), 16u);  // P / 1 job = 16
  machine.run_to_completion();
  EXPECT_TRUE(job.completed());
  EXPECT_TRUE(adaptive->all_done());
  EXPECT_EQ(adaptive->buddy().allocated(), 0);
}

TEST(AdaptiveScheduler, BatchArrivalSplitsTheMachine) {
  core::Multicomputer machine(adaptive_machine());
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 4; ++i) {
    jobs.push_back(std::make_unique<Job>(i, adaptive_job(SimTime::milliseconds(80))));
    machine.submit(*jobs.back());
  }
  // Four jobs in the system: the last dispatches see target 16/4 = 4; the
  // first saw 16/1 and took everything, so later ones queue until... no:
  // all four arrive before any finishes, so the first takes 16 (it was
  // alone), and the rest wait. Check that everything still completes and
  // the allocations recorded are powers of two.
  machine.run_to_completion();
  for (const auto& job : jobs) EXPECT_TRUE(job->completed());
  const auto* adaptive = machine.adaptive_scheduler();
  EXPECT_EQ(adaptive->completed(), 4u);
  EXPECT_EQ(adaptive->buddy().allocated(), 0);
}

TEST(AdaptiveScheduler, BackloggedQueueShrinksAllocations) {
  core::Multicomputer machine(adaptive_machine());
  // Submit 16 jobs at once: the first grabs 16 CPUs; once it finishes, 15
  // are in the system, so subsequent grants shrink toward 1.
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 16; ++i) {
    jobs.push_back(std::make_unique<Job>(i, adaptive_job(SimTime::milliseconds(64))));
    machine.submit(*jobs.back());
  }
  machine.run_to_completion();
  const auto* adaptive = machine.adaptive_scheduler();
  EXPECT_EQ(adaptive->completed(), 16u);
  // First allocation was the full machine, later ones were small.
  EXPECT_DOUBLE_EQ(adaptive->allocation_sizes().max(), 16.0);
  EXPECT_LE(adaptive->allocation_sizes().min(), 2.0);
}

TEST(AdaptiveScheduler, StaggeredArrivalsSeeLoadDependentSizes) {
  core::Multicomputer machine(adaptive_machine());
  Job first(1, adaptive_job(SimTime::seconds(2)));
  machine.submit(first);
  EXPECT_EQ(first.processes().size(), 16u);
  // While the first job holds the machine, three more arrive and queue.
  std::vector<std::unique_ptr<Job>> later;
  for (JobId i = 2; i <= 4; ++i) {
    later.push_back(std::make_unique<Job>(i, adaptive_job(SimTime::milliseconds(100))));
  }
  machine.sim().run_until(SimTime::milliseconds(10));
  for (auto& job : later) machine.submit(*job);
  EXPECT_EQ(machine.scheduler().queued_jobs(), 3u);
  machine.run_to_completion();
  // When the first finished there were 3 waiting: 16/3 -> blocks of 4.
  for (auto& job : later) {
    EXPECT_TRUE(job->completed());
    EXPECT_GE(job->consumed_cpu(), SimTime::milliseconds(99));
  }
  const auto& sizes = machine.adaptive_scheduler()->allocation_sizes();
  EXPECT_EQ(sizes.count(), 4u);
  EXPECT_DOUBLE_EQ(sizes.max(), 16.0);
  EXPECT_DOUBLE_EQ(sizes.min(), 4.0);
}

TEST(AdaptiveScheduler, MinPartitionFloorsAllocations) {
  auto cfg = adaptive_machine();
  cfg.policy.adaptive_min_partition = 8;
  core::Multicomputer machine(cfg);
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 8; ++i) {
    jobs.push_back(std::make_unique<Job>(i, adaptive_job(SimTime::milliseconds(40))));
    machine.submit(*jobs.back());
  }
  machine.run_to_completion();
  EXPECT_GE(machine.adaptive_scheduler()->allocation_sizes().min(), 8.0);
}

TEST(AdaptiveScheduler, WorksThroughExperimentHarness) {
  auto config = core::figure_point(
      workload::App::kMatMul, sched::SoftwareArch::kAdaptive,
      sched::PolicyKind::kAdaptiveStatic, 16, net::TopologyKind::kMesh);
  config.batch.small_size = 16;
  config.batch.large_size = 32;
  const auto result = core::run_experiment(config);
  // Space-shared: the paper's best/worst averaging applies.
  EXPECT_TRUE(result.worst.has_value());
  EXPECT_GT(result.mean_response_s, 0.0);
  EXPECT_EQ(result.primary.jobs.size(), 16u);
}

}  // namespace
}  // namespace tmc::sched
