#include "sched/buddy.h"

#include <gtest/gtest.h>

#include <vector>

namespace tmc::sched {
namespace {

TEST(Buddy, StartsWithOneMaximalBlock) {
  BuddyAllocator buddy(16);
  EXPECT_EQ(buddy.total(), 16);
  EXPECT_EQ(buddy.allocated(), 0);
  EXPECT_EQ(buddy.largest_free_block(), 16);
}

TEST(Buddy, RejectsNonPowerOfTwoPool) {
  EXPECT_THROW(BuddyAllocator(12), std::invalid_argument);
  EXPECT_THROW(BuddyAllocator(0), std::invalid_argument);
}

TEST(Buddy, AllocatesAlignedBlocks) {
  BuddyAllocator buddy(16);
  const auto a = buddy.allocate(4);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->base % 4, 0);
  EXPECT_EQ(a->size, 4);
  const auto b = buddy.allocate(8);
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->base % 8, 0);
  EXPECT_EQ(buddy.allocated(), 12);
}

TEST(Buddy, LowestAddressFirstIsDeterministic) {
  BuddyAllocator buddy(16);
  EXPECT_EQ(buddy.allocate(4)->base, 0);
  EXPECT_EQ(buddy.allocate(4)->base, 4);
  EXPECT_EQ(buddy.allocate(4)->base, 8);
}

TEST(Buddy, SplitsLargerBlocks) {
  BuddyAllocator buddy(16);
  const auto one = buddy.allocate(1);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->base, 0);
  // The remainder is fragmented into 1+2+4+8.
  EXPECT_EQ(buddy.free_processors(), 15);
  EXPECT_EQ(buddy.largest_free_block(), 8);
}

TEST(Buddy, RefusesWhenNoBlockFits) {
  BuddyAllocator buddy(16);
  auto half = buddy.allocate(8);
  auto quarter = buddy.allocate(4);
  auto eighth = buddy.allocate(2);
  ASSERT_TRUE(half && quarter && eighth);
  EXPECT_FALSE(buddy.allocate(4).has_value());  // only 2 left
  EXPECT_TRUE(buddy.allocate(2).has_value());
  EXPECT_FALSE(buddy.allocate(1).has_value());  // full
}

TEST(Buddy, RejectsBadSizes) {
  BuddyAllocator buddy(16);
  EXPECT_FALSE(buddy.allocate(3).has_value());
  EXPECT_FALSE(buddy.allocate(0).has_value());
  EXPECT_FALSE(buddy.allocate(32).has_value());
}

TEST(Buddy, FreeCoalescesBuddies) {
  BuddyAllocator buddy(16);
  const auto a = buddy.allocate(4);
  const auto b = buddy.allocate(4);
  const auto c = buddy.allocate(8);
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(buddy.largest_free_block(), 0);
  buddy.free(*a);
  EXPECT_EQ(buddy.largest_free_block(), 4);
  buddy.free(*b);
  EXPECT_EQ(buddy.largest_free_block(), 8);  // a+b coalesced
  buddy.free(*c);
  EXPECT_EQ(buddy.largest_free_block(), 16);  // whole pool back
  EXPECT_EQ(buddy.allocated(), 0);
}

TEST(Buddy, NonBuddyNeighboursDoNotCoalesce) {
  BuddyAllocator buddy(16);
  const auto a = buddy.allocate(4);  // [0,4)
  const auto b = buddy.allocate(4);  // [4,8)
  const auto c = buddy.allocate(4);  // [8,12)
  const auto d = buddy.allocate(4);  // [12,16)
  ASSERT_TRUE(a && b && c && d);
  buddy.free(*b);
  buddy.free(*c);
  // [4,8) and [8,12) are adjacent but not buddies (different parents):
  // 8 free processors, yet no order-3 block can form.
  EXPECT_EQ(buddy.free_processors(), 8);
  EXPECT_EQ(buddy.largest_free_block(), 4);
}

TEST(Buddy, DoubleFreeThrows) {
  BuddyAllocator buddy(16);
  const auto a = buddy.allocate(4);
  buddy.free(*a);
  EXPECT_THROW(buddy.free(*a), std::invalid_argument);
  EXPECT_THROW(buddy.free(ProcessorBlock{0, 2}), std::invalid_argument);
}

TEST(Buddy, AllocateAtMostDegradesGracefully) {
  BuddyAllocator buddy(16);
  auto hog = buddy.allocate(8);
  auto quarter = buddy.allocate(4);
  ASSERT_TRUE(hog && quarter);
  // Want 16: only a 4 remains -> grants the 4.
  const auto best = buddy.allocate_at_most(16);
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->size, 4);
  buddy.free(*best);
  // Non-power-of-two caps round down: asks for <=3, gets a 2.
  const auto capped = buddy.allocate_at_most(3);
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ(capped->size, 2);
}

TEST(Buddy, AllocateAtMostFailsOnlyWhenFull) {
  BuddyAllocator buddy(4);
  auto all = buddy.allocate(4);
  EXPECT_FALSE(buddy.allocate_at_most(4).has_value());
  buddy.free(*all);
  EXPECT_TRUE(buddy.allocate_at_most(4).has_value());
}

TEST(Buddy, StressAllocFreeInvariants) {
  BuddyAllocator buddy(16);
  std::vector<ProcessorBlock> held;
  // Deterministic churn: allocate varying sizes, free every other one.
  for (int round = 0; round < 50; ++round) {
    const int size = 1 << (round % 4);
    if (auto block = buddy.allocate(size)) {
      EXPECT_EQ(block->base % block->size, 0);  // alignment invariant
      held.push_back(*block);
    }
    if (round % 2 == 1 && !held.empty()) {
      buddy.free(held.front());
      held.erase(held.begin());
    }
    int sum = 0;
    for (const auto& blk : held) sum += blk.size;
    EXPECT_EQ(buddy.allocated(), sum);
  }
  for (const auto& blk : held) buddy.free(blk);
  EXPECT_EQ(buddy.largest_free_block(), 16);
}

}  // namespace
}  // namespace tmc::sched
