// Tests of the partition scheduler's gang rotation (the paper's
// round-robin-among-jobs time-sharing).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/machine.h"

namespace tmc::sched {
namespace {

using sim::SimTime;

JobSpec compute_job(int procs, SimTime demand_per_proc) {
  JobSpec spec;
  spec.app = "test";
  spec.demand_estimate = demand_per_proc * procs;
  spec.builder = [procs, demand_per_proc](const Job&, int) {
    std::vector<node::Program> programs(static_cast<std::size_t>(procs));
    for (auto& p : programs) p.compute(demand_per_proc).exit();
    return programs;
  };
  return spec;
}

core::MachineConfig gang_machine(int q_ms = 10) {
  core::MachineConfig cfg;
  cfg.processors = 4;
  cfg.topology = net::TopologyKind::kRing;
  cfg.policy.kind = sched::PolicyKind::kTimeSharing;
  cfg.policy.basic_quantum = SimTime::milliseconds(q_ms);
  return cfg;
}

TEST(GangRotation, SoleJobRunsWithoutRotationOverhead) {
  core::Multicomputer machine(gang_machine());
  Job job(1, compute_job(4, SimTime::milliseconds(20)));
  machine.submit(job);
  machine.run_to_completion();
  EXPECT_TRUE(job.completed());
  EXPECT_EQ(machine.partition_scheduler(0).gang_switches(), 0u);
}

TEST(GangRotation, TwoJobsAlternateTurns) {
  core::Multicomputer machine(gang_machine(/*q_ms=*/10));
  Job a(1, compute_job(4, SimTime::milliseconds(30)));
  Job b(2, compute_job(4, SimTime::milliseconds(30)));
  machine.submit(a);
  machine.submit(b);
  // While A's turn runs, B is parked.
  machine.sim().run_until(SimTime::milliseconds(5));
  EXPECT_EQ(machine.partition_scheduler(0).gang_current(), &a);
  for (const auto& p : b.processes()) {
    EXPECT_EQ(p->state(), node::ProcessState::kSuspended);
  }
  machine.run_to_completion();
  EXPECT_TRUE(a.completed());
  EXPECT_TRUE(b.completed());
  // ~60 ms of total work in 10 ms turns: several switches happened.
  EXPECT_GE(machine.partition_scheduler(0).gang_switches(), 4u);
  // Interleaving, not run-to-completion: both finish in the second half.
  EXPECT_GT(a.response_time(), SimTime::milliseconds(45));
  EXPECT_GT(b.response_time(), SimTime::milliseconds(45));
}

TEST(GangRotation, EqualJobsGetEqualService) {
  core::Multicomputer machine(gang_machine(/*q_ms=*/10));
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 3; ++i) {
    jobs.push_back(
        std::make_unique<Job>(i, compute_job(4, SimTime::milliseconds(40))));
    machine.submit(*jobs.back());
  }
  machine.run_to_completion();
  // All three rotate; completions are clustered near the end, in admission
  // order, roughly a turn apart.
  const auto r1 = jobs[0]->response_time();
  const auto r3 = jobs[2]->response_time();
  EXPECT_LT(jobs[0]->response_time(), jobs[1]->response_time());
  EXPECT_LT(jobs[1]->response_time(), jobs[2]->response_time());
  EXPECT_LT(r3 - r1, SimTime::milliseconds(25));
  EXPECT_GT(r1, SimTime::milliseconds(100));  // not run-to-completion
}

TEST(GangRotation, RrJobQuantumMakesTurnsJobCountInvariant) {
  // A 2-process job and an 8-process job on 4 CPUs: RR-job gives the
  // 8-process job Q/4 per process, so both jobs' turns are q long and they
  // receive equal processing power. With equal total demand they should
  // finish near each other.
  core::Multicomputer machine(gang_machine(/*q_ms=*/10));
  // Total demand 80 ms each: 2 procs x 40 ms vs 8 procs x 10 ms.
  Job narrow(1, compute_job(2, SimTime::milliseconds(40)));
  Job wide(2, compute_job(8, SimTime::milliseconds(10)));
  machine.submit(narrow);
  machine.submit(wide);
  machine.run_to_completion();
  const double n_s = narrow.response_time().to_seconds();
  const double w_s = wide.response_time().to_seconds();
  EXPECT_LT(std::abs(n_s - w_s) / std::max(n_s, w_s), 0.45);
}

TEST(GangRotation, CompletionStartsNextTurnImmediately) {
  core::Multicomputer machine(gang_machine(/*q_ms=*/50));
  Job quick(1, compute_job(4, SimTime::milliseconds(5)));
  Job slow(2, compute_job(4, SimTime::milliseconds(20)));
  machine.submit(quick);
  machine.submit(slow);
  machine.run_to_completion();
  // The quick job finishes inside its first 50 ms turn; the slow one should
  // not have to wait for the full turn to elapse.
  EXPECT_LT(quick.response_time(), SimTime::milliseconds(10));
  EXPECT_LT(slow.response_time(), SimTime::milliseconds(40));
}

TEST(GangRotation, UncoordinatedModeDisablesTurns) {
  auto cfg = gang_machine();
  cfg.policy.gang_scheduling = false;
  core::Multicomputer machine(cfg);
  Job a(1, compute_job(4, SimTime::milliseconds(10)));
  Job b(2, compute_job(4, SimTime::milliseconds(10)));
  machine.submit(a);
  machine.submit(b);
  machine.run_to_completion();
  EXPECT_TRUE(a.completed());
  EXPECT_TRUE(b.completed());
  EXPECT_EQ(machine.partition_scheduler(0).gang_switches(), 0u);
}

TEST(GangRotation, StaticPolicyNeverRotates) {
  auto cfg = gang_machine();
  cfg.policy.kind = PolicyKind::kStatic;
  cfg.policy.partition_size = 4;
  core::Multicomputer machine(cfg);
  Job a(1, compute_job(4, SimTime::milliseconds(10)));
  machine.submit(a);
  machine.run_to_completion();
  EXPECT_EQ(machine.partition_scheduler(0).gang_switches(), 0u);
  EXPECT_EQ(machine.partition_scheduler(0).gang_current(), nullptr);
}

TEST(GangRotation, SuspendedJobsCommunicationIsFrozen) {
  // Two jobs; job A sends itself a message across the ring. While B's turn
  // runs, A's message must not be delivered.
  core::MachineConfig cfg = gang_machine(/*q_ms=*/100);
  core::Multicomputer machine(cfg);

  JobSpec comm_spec;
  comm_spec.app = "comm";
  comm_spec.builder = [](const Job& job, int) {
    std::vector<node::Program> programs(2);
    programs[0].send(endpoint_of(job.id(), 1), 1, 50'000).exit();
    programs[1].receive(1).exit();
    return programs;
  };
  Job comm_job(1, comm_spec);
  Job hog(2, compute_job(4, SimTime::seconds(1)));
  machine.submit(comm_job);  // gets the first turn
  machine.submit(hog);
  machine.run_to_completion();
  EXPECT_TRUE(comm_job.completed());
  // The message takes ~30 ms of transfer; if it progressed during the
  // hog's turns the comm job would finish far sooner than a full rotation.
  EXPECT_TRUE(hog.completed());
}

}  // namespace
}  // namespace tmc::sched
