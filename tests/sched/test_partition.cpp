#include "sched/partition.h"

#include <gtest/gtest.h>

namespace tmc::sched {
namespace {

TEST(Partition, EqualPartitionsCoverMachineDisjointly) {
  const auto parts = equal_partitions(16, 4);
  ASSERT_EQ(parts.size(), 4u);
  std::vector<bool> seen(16, false);
  for (const auto& part : parts) {
    EXPECT_EQ(part.size(), 4);
    for (const auto node : part.nodes) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(node)]);
      seen[static_cast<std::size_t>(node)] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Partition, PartitionsAreConsecutive) {
  const auto parts = equal_partitions(16, 8);
  EXPECT_EQ(parts[0].nodes.front(), 0);
  EXPECT_EQ(parts[0].nodes.back(), 7);
  EXPECT_EQ(parts[1].nodes.front(), 8);
  EXPECT_EQ(parts[1].nodes.back(), 15);
  EXPECT_EQ(parts[0].id, 0);
  EXPECT_EQ(parts[1].id, 1);
}

TEST(Partition, WholeMachineIsOnePartition) {
  const auto parts = equal_partitions(16, 16);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0].size(), 16);
}

TEST(Partition, SingletonPartitions) {
  const auto parts = equal_partitions(16, 1);
  EXPECT_EQ(parts.size(), 16u);
}

TEST(Partition, NonDividingSizeThrows) {
  EXPECT_THROW(equal_partitions(16, 3), std::invalid_argument);
  EXPECT_THROW(equal_partitions(16, 0), std::invalid_argument);
  EXPECT_THROW(equal_partitions(16, -4), std::invalid_argument);
}

TEST(Partition, RankMappingWrapsRoundRobin) {
  Partition part{0, {4, 5, 6, 7}};
  EXPECT_EQ(part.node_for_rank(0), 4);
  EXPECT_EQ(part.node_for_rank(3), 7);
  EXPECT_EQ(part.node_for_rank(4), 4);
  EXPECT_EQ(part.node_for_rank(9), 5);
}

}  // namespace
}  // namespace tmc::sched
