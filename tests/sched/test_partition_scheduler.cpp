#include "sched/partition_scheduler.h"

#include <gtest/gtest.h>

#include "core/machine.h"

namespace tmc::sched {
namespace {

using sim::SimTime;

/// Compute-only job with a fixed process count.
JobSpec fixed_job(int procs, SimTime demand_per_proc) {
  JobSpec spec;
  spec.app = "test";
  spec.demand_estimate = demand_per_proc * procs;
  spec.builder = [procs, demand_per_proc](const Job&, int) {
    std::vector<node::Program> programs(static_cast<std::size_t>(procs));
    for (auto& p : programs) p.compute(demand_per_proc).exit();
    return programs;
  };
  return spec;
}

/// Compute-only job that adapts its width to the allocated partition.
JobSpec adaptive_job(SimTime demand_per_proc) {
  JobSpec spec;
  spec.app = "test-adaptive";
  spec.arch = SoftwareArch::kAdaptive;
  spec.demand_estimate = demand_per_proc;
  spec.builder = [demand_per_proc](const Job&, int partition_size) {
    std::vector<node::Program> programs(
        static_cast<std::size_t>(partition_size));
    for (auto& p : programs) p.compute(demand_per_proc).exit();
    return programs;
  };
  return spec;
}

core::MachineConfig small_machine(PolicyKind kind, int partition_size) {
  core::MachineConfig cfg;
  cfg.processors = 4;
  cfg.topology = net::TopologyKind::kRing;
  cfg.policy.kind = kind;
  cfg.policy.partition_size = partition_size;
  return cfg;
}

TEST(PartitionScheduler, RunsJobToCompletion) {
  core::Multicomputer machine(small_machine(PolicyKind::kStatic, 4));
  Job job(1, fixed_job(4, SimTime::milliseconds(10)));
  machine.submit(job);
  machine.run_to_completion();
  EXPECT_TRUE(job.completed());
  EXPECT_GT(job.response_time(), SimTime::milliseconds(10));
  EXPECT_TRUE(job.processes().empty());  // torn down
  EXPECT_EQ(machine.partition_scheduler(0).jobs_completed(), 1u);
  EXPECT_EQ(machine.partition_scheduler(0).active_jobs(), 0);
}

TEST(PartitionScheduler, PlacesProcessesRoundRobin) {
  core::Multicomputer machine(small_machine(PolicyKind::kStatic, 4));
  Job job(1, fixed_job(8, SimTime::milliseconds(1)));
  machine.submit(job);  // admitted synchronously
  ASSERT_EQ(job.processes().size(), 8u);
  // 8 ranks on 4 nodes: each node gets exactly 2.
  std::vector<int> per_node(4, 0);
  for (const auto& p : job.processes()) {
    ++per_node[static_cast<std::size_t>(p->node())];
  }
  for (int count : per_node) EXPECT_EQ(count, 2);
  machine.run_to_completion();
}

TEST(PartitionScheduler, DefaultPlacementStacksRankZero) {
  // Paper-faithful mapping: rank i -> partition processor i for every job.
  core::Multicomputer machine(small_machine(PolicyKind::kHybrid, 4));
  Job a(1, fixed_job(1, SimTime::milliseconds(5)));
  Job b(2, fixed_job(1, SimTime::milliseconds(5)));
  machine.submit(a);
  machine.submit(b);
  ASSERT_EQ(a.processes().size(), 1u);
  ASSERT_EQ(b.processes().size(), 1u);
  EXPECT_EQ(a.processes()[0]->node(), b.processes()[0]->node());
  machine.run_to_completion();
}

TEST(PartitionScheduler, RotatesPlacementAcrossJobsWhenEnabled) {
  auto cfg = small_machine(PolicyKind::kHybrid, 4);
  cfg.partition_sched.rotate_placement = true;
  core::Multicomputer machine(cfg);
  Job a(1, fixed_job(1, SimTime::milliseconds(5)));
  Job b(2, fixed_job(1, SimTime::milliseconds(5)));
  machine.submit(a);
  machine.submit(b);
  ASSERT_EQ(a.processes().size(), 1u);
  ASSERT_EQ(b.processes().size(), 1u);
  // Single-process jobs land on different nodes thanks to rotation.
  EXPECT_NE(a.processes()[0]->node(), b.processes()[0]->node());
  machine.run_to_completion();
}

TEST(PartitionScheduler, AdaptiveJobSeesPartitionSize) {
  core::Multicomputer machine(small_machine(PolicyKind::kStatic, 2));
  Job job(1, adaptive_job(SimTime::milliseconds(1)));
  machine.submit(job);
  EXPECT_EQ(job.processes().size(), 2u);  // partition size, not machine size
  machine.run_to_completion();
}

TEST(PartitionScheduler, TimeSharingAssignsRrJobQuantum) {
  auto cfg = small_machine(PolicyKind::kHybrid, 4);
  cfg.policy.basic_quantum = SimTime::milliseconds(40);
  core::Multicomputer machine(cfg);
  Job job(1, fixed_job(8, SimTime::milliseconds(1)));
  machine.submit(job);
  // Q = (P/T) q = (4/8) * 40ms = 20ms.
  for (const auto& p : job.processes()) {
    EXPECT_EQ(p->quantum(), SimTime::milliseconds(20));
  }
  machine.run_to_completion();
}

TEST(PartitionScheduler, StaticUsesHardwareQuantum) {
  auto cfg = small_machine(PolicyKind::kStatic, 4);
  cfg.policy.basic_quantum = SimTime::milliseconds(40);
  core::Multicomputer machine(cfg);
  Job job(1, fixed_job(8, SimTime::milliseconds(1)));
  machine.submit(job);
  for (const auto& p : job.processes()) {
    EXPECT_EQ(p->quantum(), cfg.policy.min_quantum);
  }
  machine.run_to_completion();
}

TEST(PartitionScheduler, TracksPeakMultiprogramming) {
  core::Multicomputer machine(small_machine(PolicyKind::kTimeSharing, 4));
  Job a(1, fixed_job(2, SimTime::milliseconds(5)));
  Job b(2, fixed_job(2, SimTime::milliseconds(5)));
  Job c(3, fixed_job(2, SimTime::milliseconds(5)));
  machine.submit(a);
  machine.submit(b);
  machine.submit(c);
  machine.run_to_completion();
  EXPECT_EQ(machine.partition_scheduler(0).peak_multiprogramming(), 3);
  EXPECT_EQ(machine.partition_scheduler(0).jobs_completed(), 3u);
}

TEST(PartitionScheduler, ProcessesUnregisteredAfterCompletion) {
  core::Multicomputer machine(small_machine(PolicyKind::kStatic, 4));
  Job job(1, fixed_job(2, SimTime::milliseconds(1)));
  machine.submit(job);
  const auto endpoint = endpoint_of(1, 0);
  EXPECT_NE(machine.comm().find(endpoint), nullptr);
  machine.run_to_completion();
  EXPECT_EQ(machine.comm().find(endpoint), nullptr);
}

TEST(PartitionScheduler, RecordsConsumedCpu) {
  core::Multicomputer machine(small_machine(PolicyKind::kStatic, 4));
  Job job(1, fixed_job(4, SimTime::milliseconds(10)));
  machine.submit(job);
  machine.run_to_completion();
  EXPECT_EQ(job.consumed_cpu(), SimTime::milliseconds(40));
}

TEST(PartitionScheduler, EmptyJobThrows) {
  core::Multicomputer machine(small_machine(PolicyKind::kStatic, 4));
  JobSpec spec;
  spec.builder = [](const Job&, int) { return std::vector<node::Program>{}; };
  Job job(1, std::move(spec));
  EXPECT_THROW(machine.submit(job), std::logic_error);
}

}  // namespace
}  // namespace tmc::sched
