#include "sched/policy.h"

#include <gtest/gtest.h>

namespace tmc::sched {
namespace {

using sim::SimTime;

TEST(Policy, RrJobQuantumEqualisesProcessingPower) {
  PolicyConfig cfg;
  cfg.basic_quantum = SimTime::milliseconds(50);
  cfg.min_quantum = SimTime::milliseconds(2);
  // Q = (P/T) * q: a job with more processes gets a smaller per-process
  // quantum so each *job* receives the same share.
  EXPECT_EQ(cfg.rr_job_quantum(16, 16), SimTime::milliseconds(50));
  EXPECT_EQ(cfg.rr_job_quantum(16, 8), SimTime::milliseconds(100));
  EXPECT_EQ(cfg.rr_job_quantum(8, 16), SimTime::milliseconds(25));
  EXPECT_EQ(cfg.rr_job_quantum(4, 16), SimTime::milliseconds(12)
                                           + SimTime::microseconds(500));
}

TEST(Policy, QuantumFlooredAtHardwareTimeslice) {
  PolicyConfig cfg;
  cfg.basic_quantum = SimTime::milliseconds(4);
  cfg.min_quantum = SimTime::milliseconds(2);
  EXPECT_EQ(cfg.rr_job_quantum(1, 16), SimTime::milliseconds(2));
}

TEST(Policy, RrJobQuantumRejectsEmptyJob) {
  PolicyConfig cfg;
  EXPECT_THROW((void)cfg.rr_job_quantum(16, 0), std::invalid_argument);
}

TEST(Policy, TimeSharedPredicate) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kStatic;
  EXPECT_FALSE(cfg.time_shared());
  cfg.kind = PolicyKind::kTimeSharing;
  EXPECT_TRUE(cfg.time_shared());
  cfg.kind = PolicyKind::kHybrid;
  EXPECT_TRUE(cfg.time_shared());
}

TEST(Policy, LabelNamesKindAndPartition) {
  PolicyConfig cfg;
  cfg.kind = PolicyKind::kHybrid;
  cfg.partition_size = 4;
  EXPECT_EQ(cfg.label(), "hybrid/p4");
}

TEST(Policy, ToStringCoversAllKinds) {
  EXPECT_EQ(to_string(PolicyKind::kStatic), "static");
  EXPECT_EQ(to_string(PolicyKind::kTimeSharing), "time-sharing");
  EXPECT_EQ(to_string(PolicyKind::kHybrid), "hybrid");
}

}  // namespace
}  // namespace tmc::sched
