// sched::stealing -- the work-stealing third software architecture.
//
// Covers the pieces in isolation (chunking math, the strict --steal-* CLI
// contract) and the engine end to end through a real machine: thieves make
// progress, the whole pipeline is deterministic, --steal-rate 0 reproduces
// the fixed architecture's numbers exactly (no engine is built, the jobs
// run their fallback fixed scripts), and a faulty machine still drains.
#include "sched/stealing/stealing.h"

#include <gtest/gtest.h>

#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"

namespace tmc::sched::stealing {
namespace {

// ---------------------------------------------------------------- chunking

std::size_t sum(const std::vector<std::size_t>& v) {
  return std::accumulate(v.begin(), v.end(), std::size_t{0});
}

TEST(ChunkSizes, StaticCoversTotalWithBoundedChunks) {
  for (const std::size_t total : {1u, 7u, 64u, 1000u}) {
    const auto chunks = chunk_sizes(total, 4, Chunking::kStatic, 8);
    EXPECT_EQ(sum(chunks), total) << "total " << total;
    EXPECT_LE(chunks.size(), std::size_t{4 * 8});
    for (const auto c : chunks) EXPECT_GE(c, 1u);
  }
}

TEST(ChunkSizes, StaticChunksDifferByAtMostOne) {
  const auto chunks = chunk_sizes(1000, 4, Chunking::kStatic, 8);
  const auto [lo, hi] = std::minmax_element(chunks.begin(), chunks.end());
  EXPECT_LE(*hi - *lo, 1u);
}

TEST(ChunkSizes, GuidedShrinksGeometrically) {
  const auto chunks = chunk_sizes(1000, 4, Chunking::kGuided, 8);
  EXPECT_EQ(sum(chunks), 1000u);
  // ceil(R/W): each chunk no larger than its predecessor.
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_LE(chunks[i], chunks[i - 1]) << "at " << i;
  }
  EXPECT_EQ(chunks.front(), 250u);
}

TEST(ChunkSizes, FactoringIssuesEqualBatches) {
  const auto chunks = chunk_sizes(1000, 4, Chunking::kFactoring, 8);
  EXPECT_EQ(sum(chunks), 1000u);
  // Batches of W chunks of ceil(R/2W): the first four all equal 125.
  ASSERT_GE(chunks.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(chunks[i], 125u);
  for (std::size_t i = 1; i < chunks.size(); ++i) {
    EXPECT_LE(chunks[i], chunks[i - 1]);
  }
}

TEST(ChunkSizes, TinyTotalsNeverEmitZeroChunks) {
  for (const auto chunking :
       {Chunking::kStatic, Chunking::kGuided, Chunking::kFactoring}) {
    const auto chunks = chunk_sizes(3, 8, chunking, 8);
    EXPECT_EQ(sum(chunks), 3u);
    for (const auto c : chunks) EXPECT_GE(c, 1u);
  }
}

// --------------------------------------------------------------- CLI flags

struct CliResult {
  bool consumed = false;
  bool seen = false;
  std::string error;
  StealParams params;
  int next_i = 0;
};

CliResult parse(std::vector<const char*> argv_in) {
  argv_in.insert(argv_in.begin(), "bench");
  std::vector<char*> argv;
  for (const char* a : argv_in) argv.push_back(const_cast<char*>(a));
  CliResult r;
  int i = 1;
  r.consumed = parse_cli_flag(static_cast<int>(argv.size()), argv.data(), i,
                              r.params, r.seen, r.error);
  r.next_i = i;
  return r;
}

TEST(StealCli, RateSeparateValueForm) {
  const auto r = parse({"--steal-rate", "250"});
  EXPECT_TRUE(r.consumed);
  EXPECT_TRUE(r.seen);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_DOUBLE_EQ(r.params.steal_rate, 250.0);
  EXPECT_EQ(r.next_i, 2);  // value argument consumed
}

TEST(StealCli, RateEqualsForm) {
  const auto r = parse({"--steal-rate=1e4"});
  EXPECT_TRUE(r.consumed);
  EXPECT_TRUE(r.error.empty()) << r.error;
  EXPECT_DOUBLE_EQ(r.params.steal_rate, 1e4);
}

TEST(StealCli, RateRejectsGarbageAndNegatives) {
  EXPECT_FALSE(parse({"--steal-rate", "fast"}).error.empty());
  EXPECT_FALSE(parse({"--steal-rate=-3"}).error.empty());
  EXPECT_FALSE(parse({"--steal-rate"}).error.empty());  // missing value
}

TEST(StealCli, VictimAcceptsEachPolicyAndRejectsOthers) {
  EXPECT_EQ(parse({"--steal-victim", "random"}).params.victim,
            VictimPolicy::kRandom);
  EXPECT_EQ(parse({"--steal-victim", "nearest"}).params.victim,
            VictimPolicy::kNearest);
  EXPECT_EQ(parse({"--steal-victim=last"}).params.victim,
            VictimPolicy::kLastVictim);
  EXPECT_FALSE(parse({"--steal-victim", "closest"}).error.empty());
}

TEST(StealCli, GranularityAndChunkingParse) {
  EXPECT_EQ(parse({"--steal-granularity", "half"}).params.granularity,
            Granularity::kHalfDeque);
  EXPECT_EQ(parse({"--steal-granularity=task"}).params.granularity,
            Granularity::kSingleTask);
  EXPECT_FALSE(parse({"--steal-granularity", "deque"}).error.empty());
  EXPECT_EQ(parse({"--steal-chunk", "guided"}).params.chunking,
            Chunking::kGuided);
  EXPECT_EQ(parse({"--steal-chunk=factoring"}).params.chunking,
            Chunking::kFactoring);
  EXPECT_FALSE(parse({"--steal-chunk", "dynamic"}).error.empty());
}

TEST(StealCli, ChunksPerWorkerAndSeedValidate) {
  EXPECT_EQ(parse({"--steal-chunks", "16"}).params.chunks_per_worker, 16);
  EXPECT_FALSE(parse({"--steal-chunks", "0"}).error.empty());
  EXPECT_FALSE(parse({"--steal-chunks", "-2"}).error.empty());
  EXPECT_EQ(parse({"--steal-seed=7"}).params.seed, 7u);
  EXPECT_FALSE(parse({"--steal-seed", "pi"}).error.empty());
}

TEST(StealCli, UnrelatedFlagsAreNotConsumed) {
  const auto r = parse({"--threads", "4"});
  EXPECT_FALSE(r.consumed);
  EXPECT_FALSE(r.seen);
  EXPECT_TRUE(r.error.empty());
  EXPECT_EQ(r.next_i, 1);
}

TEST(StealCli, ToStringRoundTrips) {
  EXPECT_EQ(to_string(VictimPolicy::kRandom), std::string_view("random"));
  EXPECT_EQ(to_string(VictimPolicy::kNearest), std::string_view("nearest"));
  EXPECT_EQ(to_string(VictimPolicy::kLastVictim), std::string_view("last"));
  EXPECT_EQ(to_string(Granularity::kSingleTask), std::string_view("task"));
  EXPECT_EQ(to_string(Granularity::kHalfDeque), std::string_view("half"));
  EXPECT_EQ(to_string(Chunking::kStatic), std::string_view("static"));
  EXPECT_EQ(to_string(Chunking::kGuided), std::string_view("guided"));
  EXPECT_EQ(to_string(Chunking::kFactoring), std::string_view("factoring"));
}

// ------------------------------------------------------------- end to end

core::ExperimentConfig steal_config(workload::App app, int partition,
                                    double rate) {
  auto config = core::figure_point(app, SoftwareArch::kStealing,
                                   PolicyKind::kStatic, partition,
                                   net::TopologyKind::kMesh);
  if (app == workload::App::kMatMul) {
    config.batch.small_size = 16;
    config.batch.large_size = 32;
  } else {
    config.batch.small_size = 256;
    config.batch.large_size = 512;
    config.batch.sort_skew = 0.3;  // give the thieves something to steal
  }
  config.machine.stealing.steal_rate = rate;
  return config;
}

TEST(StealingEngine, BatchCompletesAndThievesMakeProgress) {
  const auto result = core::run_batch(steal_config(workload::App::kSort, 8,
                                                   10'000.0),
                                      workload::BatchOrder::kInterleaved);
  EXPECT_EQ(result.jobs.size(), 16u);
  EXPECT_GT(result.mean_response_s(), 0.0);
  EXPECT_GT(result.machine.steals.requests, 0u);
  EXPECT_GT(result.machine.steals.grants, 0u);
  EXPECT_EQ(result.machine.steals.grants + result.machine.steals.denials,
            result.machine.steals.requests);
  EXPECT_GE(result.machine.steals.tasks_migrated,
            result.machine.steals.grants);
  EXPECT_GT(result.machine.steals.bytes_migrated, 0u);
}

TEST(StealingEngine, RunsAreDeterministic) {
  const auto config = steal_config(workload::App::kSort, 8, 10'000.0);
  const auto a = core::run_batch(config, workload::BatchOrder::kInterleaved);
  const auto b = core::run_batch(config, workload::BatchOrder::kInterleaved);
  EXPECT_EQ(a.machine.events, b.machine.events);
  EXPECT_EQ(a.machine.messages, b.machine.messages);
  EXPECT_EQ(a.machine.steals.requests, b.machine.steals.requests);
  EXPECT_EQ(a.machine.steals.grants, b.machine.steals.grants);
  EXPECT_EQ(a.machine.steals.tasks_migrated, b.machine.steals.tasks_migrated);
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].response_s, b.jobs[i].response_s);
  }
}

TEST(StealingEngine, RateZeroReproducesTheFixedArchitectureExactly) {
  // --steal-rate 0 builds no engine; kStealing jobs run their fallback
  // fixed scripts, so every per-job number matches kFixed bit for bit.
  auto stealing = steal_config(workload::App::kMatMul, 4, 0.0);
  auto fixed = stealing;
  fixed.machine.stealing = sched::stealing::StealParams{};
  fixed.batch.arch = SoftwareArch::kFixed;
  const auto a = core::run_batch(stealing, workload::BatchOrder::kInterleaved);
  const auto b = core::run_batch(fixed, workload::BatchOrder::kInterleaved);
  EXPECT_EQ(a.machine.steals.requests, 0u);
  EXPECT_EQ(a.machine.events, b.machine.events);
  EXPECT_EQ(a.machine.messages, b.machine.messages);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs[i].response_s, b.jobs[i].response_s);
    EXPECT_DOUBLE_EQ(a.jobs[i].cpu_s, b.jobs[i].cpu_s);
  }
}

TEST(StealingEngine, EveryChunkingAndGranularityDrains) {
  for (const auto chunking :
       {Chunking::kStatic, Chunking::kGuided, Chunking::kFactoring}) {
    for (const auto granularity :
         {Granularity::kSingleTask, Granularity::kHalfDeque}) {
      auto config = steal_config(workload::App::kSort, 4, 10'000.0);
      config.machine.stealing.chunking = chunking;
      config.machine.stealing.granularity = granularity;
      const auto result =
          core::run_batch(config, workload::BatchOrder::kInterleaved);
      EXPECT_EQ(result.jobs.size(), 16u)
          << to_string(chunking) << "/" << to_string(granularity);
    }
  }
}

TEST(StealingEngine, SurvivesNodeFaults) {
  // A crashing machine must still drain the batch: steals aimed at dead
  // nodes time out through the normal fault machinery and the aborted
  // jobs restart. Deterministic via the fixed fault seed.
  auto config = steal_config(workload::App::kSort, 8, 10'000.0);
  config.machine.faults.node_rate = 0.02;
  const auto a = core::run_batch(config, workload::BatchOrder::kInterleaved);
  EXPECT_EQ(a.jobs.size(), 16u);
  const auto b = core::run_batch(config, workload::BatchOrder::kInterleaved);
  EXPECT_EQ(a.machine.events, b.machine.events);
  EXPECT_EQ(a.machine.steals.requests, b.machine.steals.requests);
}

}  // namespace
}  // namespace tmc::sched::stealing
