#include "sched/super_scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/machine.h"

namespace tmc::sched {
namespace {

using sim::SimTime;

JobSpec compute_job(int procs, SimTime demand_per_proc) {
  JobSpec spec;
  spec.app = "test";
  spec.demand_estimate = demand_per_proc * procs;
  spec.builder = [procs, demand_per_proc](const Job&, int) {
    std::vector<node::Program> programs(static_cast<std::size_t>(procs));
    for (auto& p : programs) p.compute(demand_per_proc).exit();
    return programs;
  };
  return spec;
}

core::MachineConfig machine_config(PolicyKind kind, int partition_size,
                                   int set_size = INT_MAX) {
  core::MachineConfig cfg;
  cfg.processors = 4;
  cfg.topology = net::TopologyKind::kLinear;
  cfg.policy.kind = kind;
  cfg.policy.partition_size = partition_size;
  cfg.policy.set_size = set_size;
  return cfg;
}

TEST(SuperScheduler, StaticRunsOneJobPerPartition) {
  core::Multicomputer machine(machine_config(PolicyKind::kStatic, 2));
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 4; ++i) {
    jobs.push_back(
        std::make_unique<Job>(i, compute_job(2, SimTime::milliseconds(10))));
    machine.submit(*jobs.back());
  }
  // Two partitions: jobs 1, 2 dispatched, jobs 3, 4 queued.
  EXPECT_TRUE(jobs[0]->dispatched());
  EXPECT_TRUE(jobs[1]->dispatched());
  EXPECT_FALSE(jobs[2]->dispatched());
  EXPECT_EQ(machine.scheduler().queued_jobs(), 2u);
  machine.run_to_completion();
  for (const auto& job : jobs) EXPECT_TRUE(job->completed());
  EXPECT_TRUE(machine.scheduler().all_done());
}

TEST(SuperScheduler, StaticQueuedJobsWaitForPartition) {
  core::Multicomputer machine(machine_config(PolicyKind::kStatic, 4));
  Job first(1, compute_job(4, SimTime::milliseconds(10)));
  Job second(2, compute_job(4, SimTime::milliseconds(10)));
  machine.submit(first);
  machine.submit(second);
  machine.run_to_completion();
  // Second job's wait spans the first job's entire run.
  EXPECT_EQ(second.dispatch_time(), first.completion_time());
  EXPECT_GT(second.wait_time(), SimTime::milliseconds(10));
  EXPECT_EQ(first.wait_time(), SimTime::zero());
}

TEST(SuperScheduler, StaticDispatchesFcfs) {
  core::Multicomputer machine(machine_config(PolicyKind::kStatic, 4));
  std::vector<std::unique_ptr<Job>> jobs;
  std::vector<JobId> completion_order;
  machine.scheduler().set_completion_observer(
      [&](Job& job) { completion_order.push_back(job.id()); });
  for (JobId i = 1; i <= 4; ++i) {
    jobs.push_back(
        std::make_unique<Job>(i, compute_job(4, SimTime::milliseconds(5))));
    machine.submit(*jobs.back());
  }
  machine.run_to_completion();
  EXPECT_EQ(completion_order, (std::vector<JobId>{1, 2, 3, 4}));
}

TEST(SuperScheduler, TimeSharingDispatchesWholeBatchAtOnce) {
  core::Multicomputer machine(machine_config(PolicyKind::kTimeSharing, 4));
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 6; ++i) {
    jobs.push_back(
        std::make_unique<Job>(i, compute_job(2, SimTime::milliseconds(5))));
    machine.submit(*jobs.back());
  }
  for (const auto& job : jobs) EXPECT_TRUE(job->dispatched());
  EXPECT_EQ(machine.scheduler().queued_jobs(), 0u);
  EXPECT_EQ(machine.partition_scheduler(0).active_jobs(), 6);
  machine.run_to_completion();
}

TEST(SuperScheduler, HybridDealsJobsEquitably) {
  core::Multicomputer machine(machine_config(PolicyKind::kHybrid, 2));
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 6; ++i) {
    jobs.push_back(
        std::make_unique<Job>(i, compute_job(2, SimTime::milliseconds(5))));
    machine.submit(*jobs.back());
  }
  EXPECT_EQ(machine.partition_scheduler(0).active_jobs(), 3);
  EXPECT_EQ(machine.partition_scheduler(1).active_jobs(), 3);
  machine.run_to_completion();
}

TEST(SuperScheduler, SetSizeBoundsPerPartitionMultiprogramming) {
  core::Multicomputer machine(
      machine_config(PolicyKind::kHybrid, 2, /*set_size=*/1));
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 4; ++i) {
    jobs.push_back(
        std::make_unique<Job>(i, compute_job(2, SimTime::milliseconds(5))));
    machine.submit(*jobs.back());
  }
  // With set size 1 the hybrid degenerates to space sharing: 2 running,
  // 2 queued.
  EXPECT_EQ(machine.scheduler().queued_jobs(), 2u);
  machine.run_to_completion();
  EXPECT_EQ(machine.partition_scheduler(0).peak_multiprogramming(), 1);
  EXPECT_EQ(machine.partition_scheduler(1).peak_multiprogramming(), 1);
}

TEST(SuperScheduler, CompletionObserverSeesEveryJob) {
  core::Multicomputer machine(machine_config(PolicyKind::kTimeSharing, 4));
  int observed = 0;
  machine.scheduler().set_completion_observer([&](Job&) { ++observed; });
  std::vector<std::unique_ptr<Job>> jobs;
  for (JobId i = 1; i <= 5; ++i) {
    jobs.push_back(
        std::make_unique<Job>(i, compute_job(1, SimTime::milliseconds(1))));
    machine.submit(*jobs.back());
  }
  machine.run_to_completion();
  EXPECT_EQ(observed, 5);
  EXPECT_EQ(machine.scheduler().submitted(), 5u);
  EXPECT_EQ(machine.scheduler().completed(), 5u);
}

TEST(SuperScheduler, ArrivalTimeIsSubmissionInstant) {
  core::Multicomputer machine(machine_config(PolicyKind::kStatic, 4));
  Job job(1, compute_job(1, SimTime::milliseconds(1)));
  machine.sim().run_until(SimTime::seconds(3));
  machine.submit(job);
  machine.run_to_completion();
  EXPECT_EQ(job.arrival(), SimTime::seconds(3));
  EXPECT_GT(job.completion_time(), SimTime::seconds(3));
}

}  // namespace
}  // namespace tmc::sched
