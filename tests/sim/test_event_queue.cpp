#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace tmc::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::seconds(3), [&] { order.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(SimTime::seconds(9), [] {});
  q.schedule(SimTime::seconds(4), [] {});
  EXPECT_EQ(q.next_time(), SimTime::seconds(4));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(kNoEvent));
}

TEST(EventQueue, CancelledEventsAreSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  const EventId early = q.schedule(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { order.push_back(2); });
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
  q.pop().callback();
  EXPECT_EQ(order, std::vector<int>{2});
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::milliseconds(7), [] {});
  auto fired = q.pop();
  EXPECT_EQ(fired.time, SimTime::milliseconds(7));
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::seconds(1), [] {});
  q.schedule(SimTime::seconds(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduledCountIsMonotone) {
  EventQueue q;
  q.schedule(SimTime::seconds(1), [] {});
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  q.cancel(id);
  EXPECT_EQ(q.scheduled_count(), 2u);
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  q.pop().callback();
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, StaleHandleDoesNotCancelSlotReuse) {
  // Cancelling with a handle whose slot has been reused by a later event
  // must fail and leave the new occupant untouched (generation tag).
  EventQueue q;
  const EventId old_id = q.schedule(SimTime::seconds(1), [] {});
  ASSERT_TRUE(q.cancel(old_id));
  bool fired = false;
  const EventId new_id = q.schedule(SimTime::seconds(2), [&] { fired = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
  q.pop().callback();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, StaleHandleAfterFireDoesNotCancelSlotReuse) {
  EventQueue q;
  const EventId old_id = q.schedule(SimTime::seconds(1), [] {});
  q.pop().callback();
  q.schedule(SimTime::seconds(2), [] {});
  EXPECT_FALSE(q.cancel(old_id));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, FifoTieBreakSurvivesInterleavedCancels) {
  // A few hundred events across a handful of equal timestamps, with a
  // deterministic subset cancelled: survivors must still pop in
  // nondecreasing time and, within a time, in schedule order.
  EventQueue q;
  struct Scheduled {
    EventId id;
    std::int64_t time;
    int seq;
  };
  std::vector<Scheduled> events;
  std::vector<std::pair<std::int64_t, int>> fired;
  for (int i = 0; i < 400; ++i) {
    const std::int64_t t = (i * 13) % 7;  // many ties per timestamp
    const EventId id = q.schedule(
        SimTime::seconds(t),
        [&fired, t, i] { fired.emplace_back(t, i); });
    events.push_back({id, t, i});
  }
  std::vector<std::pair<std::int64_t, int>> expected;
  for (const auto& event : events) {
    if (event.seq % 3 == 1) {
      EXPECT_TRUE(q.cancel(event.id));
    } else {
      expected.emplace_back(event.time, event.seq);
    }
  }
  std::sort(expected.begin(), expected.end());  // time, then schedule order
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, DiscardAllReentrancy) {
  // A callback whose *destructor* schedules follow-up events: discard_all
  // must keep draining until the set is truly empty.
  EventQueue q;
  struct RescheduleOnDestroy {
    RescheduleOnDestroy(EventQueue* q, int d) : queue(q), depth(d) {}
    ~RescheduleOnDestroy() {
      if (depth > 0) {
        auto guard = std::make_unique<RescheduleOnDestroy>(queue, depth - 1);
        queue->schedule(SimTime::seconds(depth),
                        [g = std::move(guard)] { (void)g; });
      }
    }
    EventQueue* queue;
    int depth;
  };
  for (int i = 0; i < 3; ++i) {
    auto guard = std::make_unique<RescheduleOnDestroy>(&q, 2);
    q.schedule(SimTime::seconds(1), [g = std::move(guard)] { (void)g; });
  }
  // 3 originals + 3 depth-1 + 3 depth-0 reschedules.
  EXPECT_EQ(q.discard_all(), 9u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelDestroysCallbackImmediately) {
  EventQueue q;
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  const EventId id =
      q.schedule(SimTime::seconds(1), [t = std::move(token)] { (void)t; });
  EXPECT_FALSE(watch.expired());
  q.cancel(id);
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, ManyEventsHeapOrder) {
  // Larger-scale ordering check across the 4-ary heap's sift paths.
  EventQueue q;
  std::vector<std::int64_t> fired;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t t = (i * 7919) % 997;
    q.schedule(SimTime::nanoseconds(t), [&fired, t] { fired.push_back(t); });
  }
  while (!q.empty()) q.pop().callback();
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
  EXPECT_EQ(fired.size(), 2000u);
}

TEST(EventQueue, MoveOnlyCallbacksSupported) {
  EventQueue q;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  q.schedule(SimTime::seconds(1),
             [p = std::move(payload), &seen] { seen = *p; });
  q.pop().callback();
  EXPECT_EQ(seen, 42);
}

}  // namespace
}  // namespace tmc::sim
