#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace tmc::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::seconds(3), [&] { order.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.pop().callback();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(SimTime::seconds(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().callback();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(SimTime::seconds(9), [] {});
  q.schedule(SimTime::seconds(4), [] {});
  EXPECT_EQ(q.next_time(), SimTime::seconds(4));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(12345));
  EXPECT_FALSE(q.cancel(kNoEvent));
}

TEST(EventQueue, CancelledEventsAreSkippedOnPop) {
  EventQueue q;
  std::vector<int> order;
  const EventId early = q.schedule(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { order.push_back(2); });
  q.cancel(early);
  EXPECT_EQ(q.next_time(), SimTime::seconds(2));
  q.pop().callback();
  EXPECT_EQ(order, std::vector<int>{2});
}

TEST(EventQueue, PopReturnsTimeAndId) {
  EventQueue q;
  const EventId id = q.schedule(SimTime::milliseconds(7), [] {});
  auto fired = q.pop();
  EXPECT_EQ(fired.time, SimTime::milliseconds(7));
  EXPECT_EQ(fired.id, id);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(SimTime::seconds(1), [] {});
  q.schedule(SimTime::seconds(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, ScheduledCountIsMonotone) {
  EventQueue q;
  q.schedule(SimTime::seconds(1), [] {});
  const EventId id = q.schedule(SimTime::seconds(1), [] {});
  q.cancel(id);
  EXPECT_EQ(q.scheduled_count(), 2u);
}

TEST(EventQueue, MoveOnlyCallbacksSupported) {
  EventQueue q;
  auto payload = std::make_unique<int>(42);
  int seen = 0;
  q.schedule(SimTime::seconds(1),
             [p = std::move(payload), &seen] { seen = *p; });
  q.pop().callback();
  EXPECT_EQ(seen, 42);
}

}  // namespace
}  // namespace tmc::sim
