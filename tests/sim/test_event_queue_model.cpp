// Randomized differential model check of the EventQueue kernel.
//
// The queue under test is a 4-ary heap over a generation-tagged slot pool
// with a same-instant FIFO fast lane and a bulk-insert path -- four
// interacting mechanisms whose contract is simple to state: events fire in
// strict (time, insertion-order) order, handles cancel exactly once, and
// schedule_batch is observably identical to a loop of schedule calls. The
// reference model here is a std::multimap keyed on (time, seq): trivially
// correct, allocation-happy, and slow -- everything the production queue is
// not. Each seeded run drives both through the same operation stream and
// demands bit-identical observable behaviour.
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/simulation.h"
#include "sim/time.h"

namespace tmc::sim {
namespace {

SimTime ns(std::int64_t v) { return SimTime::nanoseconds(v); }

/// Reference pending-event set: multimap ordered by (time, seq), with a
/// handle table for cancellation. seq mirrors the production queue's global
/// schedule counter, so FIFO tie-breaks are modelled exactly.
class ReferenceQueue {
 public:
  std::uint64_t schedule(SimTime at, int payload) {
    const std::uint64_t handle = next_handle_++;
    const auto it = events_.emplace(Key{at, ++seq_}, Pending{payload, handle});
    handles_.emplace(handle, it);
    return handle;
  }

  bool cancel(std::uint64_t handle) {
    const auto it = handles_.find(handle);
    if (it == handles_.end()) return false;
    events_.erase(it->second);
    handles_.erase(it);
    return true;
  }

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::size_t size() const { return events_.size(); }

  [[nodiscard]] SimTime next_time() const { return events_.begin()->first.first; }

  struct Popped {
    SimTime time;
    int payload;
  };
  Popped pop() {
    const auto it = events_.begin();
    Popped out{it->first.first, it->second.payload};
    handles_.erase(it->second.handle);
    events_.erase(it);
    return out;
  }

 private:
  using Key = std::pair<SimTime, std::uint64_t>;
  struct Pending {
    int payload;
    std::uint64_t handle;
  };
  std::multimap<Key, Pending> events_;
  std::unordered_map<std::uint64_t, std::multimap<Key, Pending>::iterator>
      handles_;
  std::uint64_t seq_ = 0;
  std::uint64_t next_handle_ = 1;
};

/// Drives EventQueue and ReferenceQueue through one seeded operation stream.
/// `fired` collects the payloads EventQueue callbacks report; every pop is
/// cross-checked immediately so a divergence pinpoints the offending op.
class DifferentialDriver {
 public:
  explicit DifferentialDriver(std::uint64_t seed) : rng_(seed) {}

  void run(int ops) {
    for (int i = 0; i < ops; ++i) step();
    drain();
    EXPECT_TRUE(queue_.empty());
    EXPECT_TRUE(reference_.empty());
  }

 private:
  void step() {
    EXPECT_EQ(queue_.size(), reference_.size());
    switch (pick_op()) {
      case Op::kSchedule: do_schedule(); break;
      case Op::kBatch: do_batch(); break;
      case Op::kPop: do_pop(); break;
      case Op::kPopIfAtMost: do_pop_if_at_most(); break;
      case Op::kCancel: do_cancel(); break;
      case Op::kPeek: do_peek(); break;
    }
  }

  enum class Op { kSchedule, kBatch, kPop, kPopIfAtMost, kCancel, kPeek };

  Op pick_op() {
    const int r = std::uniform_int_distribution<int>(0, 99)(rng_);
    if (r < 40) return Op::kSchedule;
    if (r < 50) return Op::kBatch;
    if (r < 75) return Op::kPop;
    if (r < 85) return Op::kPopIfAtMost;
    if (r < 95) return Op::kCancel;
    return Op::kPeek;
  }

  /// Times cluster around the current clock with a heavy weight on exact
  /// ties and zero deltas, the cases the FIFO lane and tie-break exist for.
  /// Occasionally earlier than the clock: the queue's contract is "pop the
  /// minimum", not "times are monotone", and the lane gate must stay exact
  /// when the clock regresses.
  SimTime pick_time() {
    const int r = std::uniform_int_distribution<int>(0, 9)(rng_);
    if (r < 4) return clock_;  // same instant as the last pop
    if (r == 4 && clock_ > ns(0)) {
      return clock_ - ns(std::uniform_int_distribution<std::int64_t>(
                          0, clock_.ns())(rng_));
    }
    return clock_ +
           ns(std::uniform_int_distribution<std::int64_t>(0, 50)(rng_));
  }

  void do_schedule() {
    const SimTime at = pick_time();
    const int payload = next_payload_++;
    const EventId id = queue_.schedule(at, [this, payload] {
      fired_payload_ = payload;
    });
    const std::uint64_t ref = reference_.schedule(at, payload);
    live_.emplace_back(id, ref);
  }

  void do_batch() {
    const SimTime at = pick_time();
    const std::size_t k =
        std::uniform_int_distribution<std::size_t>(1, 16)(rng_);
    EventBatch batch;
    std::vector<int> payloads;
    for (std::size_t j = 0; j < k; ++j) {
      const int payload = next_payload_++;
      payloads.push_back(payload);
      batch.add([this, payload] { fired_payload_ = payload; });
    }
    std::vector<EventId> ids(k, kNoEvent);
    ASSERT_EQ(queue_.schedule_batch(at, batch.callbacks(), ids.data()), k);
    for (std::size_t j = 0; j < k; ++j) {
      ASSERT_NE(ids[j], kNoEvent);
      live_.emplace_back(ids[j], reference_.schedule(at, payloads[j]));
    }
  }

  void do_pop() {
    if (reference_.empty()) {
      EXPECT_TRUE(queue_.empty());
      return;
    }
    const auto expected = reference_.pop();
    EventQueue::Fired fired = queue_.pop();
    check_fired(fired, expected);
  }

  void do_pop_if_at_most() {
    // Limits straddle next_time() so both accept and reject paths run.
    const SimTime limit =
        clock_ + ns(std::uniform_int_distribution<std::int64_t>(0, 25)(rng_));
    EventQueue::Fired fired;
    const bool popped = queue_.pop_if_at_most(limit, fired);
    const bool expect_pop =
        !reference_.empty() && reference_.next_time() <= limit;
    ASSERT_EQ(popped, expect_pop);
    if (popped) check_fired(fired, reference_.pop());
  }

  void do_cancel() {
    if (live_.empty()) return;
    // Mix of live handles and handles already fired/cancelled: both queues
    // must agree on which cancellations succeed.
    const std::size_t idx =
        std::uniform_int_distribution<std::size_t>(0, live_.size() - 1)(rng_);
    const auto [id, ref] = live_[idx];
    EXPECT_EQ(queue_.cancel(id), reference_.cancel(ref));
    live_[idx] = live_.back();
    live_.pop_back();
  }

  void do_peek() {
    if (reference_.empty()) {
      EXPECT_TRUE(queue_.empty());
      return;
    }
    EXPECT_EQ(queue_.next_time(), reference_.next_time());
  }

  void check_fired(EventQueue::Fired& fired, ReferenceQueue::Popped expected) {
    ASSERT_EQ(fired.time, expected.time);
    fired_payload_ = -1;
    fired.callback();
    ASSERT_EQ(fired_payload_, expected.payload);
    clock_ = fired.time;
  }

  void drain() {
    while (!reference_.empty()) do_pop();
  }

  std::mt19937_64 rng_;
  EventQueue queue_;
  ReferenceQueue reference_;
  /// (production handle, reference handle) of not-yet-consumed schedules.
  std::vector<std::pair<EventId, std::uint64_t>> live_;
  SimTime clock_;
  int next_payload_ = 0;
  int fired_payload_ = -1;
};

TEST(EventQueueModel, RandomizedDifferential) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    DifferentialDriver driver(seed);
    driver.run(10'000);
  }
}

// A heavier mix of same-instant scheduling: every seed here spends most of
// its schedules on exact clock ties, keeping the FIFO lane continuously hot
// while pops interleave lane and heap fronts.
TEST(EventQueueModel, SameInstantStress) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    EventQueue queue;
    ReferenceQueue reference;
    std::mt19937_64 rng(seed);
    SimTime clock;
    int fired = -1;
    int payload = 0;
    for (int round = 0; round < 2'000; ++round) {
      const int burst = std::uniform_int_distribution<int>(1, 6)(rng);
      for (int j = 0; j < burst; ++j) {
        // 3:1 same-instant to near-future.
        const SimTime at =
            std::uniform_int_distribution<int>(0, 3)(rng) != 0
                ? clock
                : clock + ns(std::uniform_int_distribution<int>(1, 9)(rng));
        const int p = payload++;
        queue.schedule(at, [&fired, p] { fired = p; });
        reference.schedule(at, p);
      }
      const int pops = std::uniform_int_distribution<int>(1, burst)(rng);
      for (int j = 0; j < pops && !reference.empty(); ++j) {
        const auto expected = reference.pop();
        auto got = queue.pop();
        ASSERT_EQ(got.time, expected.time);
        fired = -1;
        got.callback();
        ASSERT_EQ(fired, expected.payload);
        clock = got.time;
      }
    }
    while (!reference.empty()) {
      const auto expected = reference.pop();
      auto got = queue.pop();
      ASSERT_EQ(got.time, expected.time);
      fired = -1;
      got.callback();
      ASSERT_EQ(fired, expected.payload);
    }
    EXPECT_TRUE(queue.empty());
  }
}

TEST(EventQueueModel, BatchMatchesIndividualSchedules) {
  // Same callbacks, same instant, two queues: one bulk insert vs a loop of
  // schedule() calls. The pop sequences must be identical -- the documented
  // schedule_batch contract.
  for (const std::size_t batch_size : {1u, 2u, 7u, 64u, 500u}) {
    EventQueue bulk;
    EventQueue loop;
    std::vector<int> bulk_fired;
    std::vector<int> loop_fired;
    // Pre-load both with the same background events at varied times so the
    // batch lands in a non-trivial heap.
    for (int i = 0; i < 40; ++i) {
      bulk.schedule(ns(10 + 3 * i), [&bulk_fired, i] {
        bulk_fired.push_back(1000 + i);
      });
      loop.schedule(ns(10 + 3 * i), [&loop_fired, i] {
        loop_fired.push_back(1000 + i);
      });
    }
    EventBatch batch;
    for (std::size_t i = 0; i < batch_size; ++i) {
      const int p = static_cast<int>(i);
      batch.add([&bulk_fired, p] { bulk_fired.push_back(p); });
      loop.schedule(ns(42), [&loop_fired, p] {
        loop_fired.push_back(p);
      });
    }
    EXPECT_EQ(bulk.schedule_batch(ns(42), batch.callbacks()), batch_size);
    while (!bulk.empty()) bulk.pop().callback();
    while (!loop.empty()) loop.pop().callback();
    EXPECT_EQ(bulk_fired, loop_fired) << "batch size " << batch_size;
  }
}

TEST(EventQueueModel, BatchLargerThanHeapTakesHeapifyPath) {
  // A batch that rivals the pending set rebuilds the heap bottom-up; the
  // observable order must still be exact (time, then span order).
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(ns(5), [&fired] { fired.push_back(-1); });
  queue.schedule(ns(100), [&fired] { fired.push_back(-2); });
  EventBatch batch;
  for (int i = 0; i < 32; ++i) {
    batch.add([&fired, i] { fired.push_back(i); });
  }
  EXPECT_EQ(queue.schedule_batch(ns(50), batch.callbacks()), 32u);
  while (!queue.empty()) queue.pop().callback();
  ASSERT_EQ(fired.size(), 34u);
  EXPECT_EQ(fired.front(), -1);
  EXPECT_EQ(fired.back(), -2);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fired[static_cast<std::size_t>(i) + 1], i);
}

TEST(EventQueueModel, BatchIdsAreCancelable) {
  EventQueue queue;
  std::vector<int> fired;
  EventBatch batch;
  for (int i = 0; i < 8; ++i) {
    batch.add([&fired, i] { fired.push_back(i); });
  }
  EventId ids[8];
  ASSERT_EQ(queue.schedule_batch(ns(7), batch.callbacks(), ids), 8u);
  EXPECT_TRUE(queue.cancel(ids[2]));
  EXPECT_TRUE(queue.cancel(ids[5]));
  EXPECT_FALSE(queue.cancel(ids[2]));  // second cancel must fail
  while (!queue.empty()) queue.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 3, 4, 6, 7}));
}

TEST(EventQueueModel, EmptyBatchIsANoOp) {
  EventQueue queue;
  EventBatch batch;
  EXPECT_EQ(queue.schedule_batch(ns(3), batch.callbacks()), 0u);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueModel, HandleGenerationSurvivesSlotReuse) {
  // Pop an event, then keep scheduling until its pool slot is reused; the
  // stale handle must not cancel the new occupant.
  EventQueue queue;
  const EventId first = queue.schedule(ns(1), [] {});
  queue.pop().callback();
  // The freed slot is at the head of the free list, so the very next
  // schedule reuses it with a bumped generation.
  const EventId second = queue.schedule(ns(2), [] {});
  EXPECT_NE(first, second);
  EXPECT_FALSE(queue.cancel(first));
  EXPECT_TRUE(queue.cancel(second));
}

TEST(EventQueueModel, CancelledLaneEntriesAreSkipped) {
  // Entries sitting in the same-instant lane honour lazy deletion too.
  EventQueue queue;
  std::vector<int> fired;
  queue.schedule(ns(0), [&fired] { fired.push_back(0); });
  queue.pop().callback();  // clock now at 0; lane active for t=0
  const EventId a = queue.schedule(ns(0), [&fired] { fired.push_back(1); });
  const EventId b = queue.schedule(ns(0), [&fired] { fired.push_back(2); });
  const EventId c = queue.schedule(ns(0), [&fired] { fired.push_back(3); });
  EXPECT_TRUE(queue.cancel(b));
  (void)a;
  (void)c;
  while (!queue.empty()) queue.pop().callback();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 3}));
}

TEST(EventQueueModel, PopIfAtMostRespectsLimit) {
  EventQueue queue;
  queue.schedule(ns(10), [] {});
  EventQueue::Fired fired;
  EXPECT_FALSE(queue.pop_if_at_most(ns(9), fired));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_TRUE(queue.pop_if_at_most(ns(10), fired));
  EXPECT_EQ(fired.time, ns(10));
  EXPECT_TRUE(queue.empty());
  EXPECT_FALSE(queue.pop_if_at_most(SimTime::max(), fired));
}

TEST(EventQueueModel, ZeroDelayCascadeFiresInScheduleOrder) {
  // A callback that schedules more work at its own instant: the follow-ups
  // ride the lane and must fire after everything already pending at that
  // time, in the order they were scheduled.
  Simulation sim;
  std::vector<int> order;
  sim.schedule(ns(5), [&] {
    order.push_back(0);
    sim.schedule(SimTime::zero(), [&order] { order.push_back(2); });
    sim.schedule(SimTime::zero(), [&order] { order.push_back(3); });
  });
  sim.schedule(ns(5), [&order] { order.push_back(1); });
  sim.run_until(ns(100));
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueueModel, StepUntilMatchesRunUntil) {
  // Two simulations with the same script: one driven by run_until, one by a
  // step_until loop. Fired counts and final clocks must agree.
  auto script = [](Simulation& sim, std::vector<std::int64_t>& times) {
    for (int i = 0; i < 20; ++i) {
      sim.schedule(ns(3 * i), [&sim, &times] {
        times.push_back(sim.now().ns());
      });
    }
  };
  Simulation a;
  Simulation b;
  std::vector<std::int64_t> ta;
  std::vector<std::int64_t> tb;
  script(a, ta);
  script(b, tb);
  a.run_until(ns(1000));
  while (b.step_until(ns(1000))) {
  }
  EXPECT_EQ(ta, tb);
  // run_until advances the clock to the horizon; step_until stops at the
  // last fired event -- both see the same event stream.
  EXPECT_EQ(a.now(), ns(1000));
  EXPECT_EQ(b.now(), ns(3 * 19));
  EXPECT_EQ(a.fired_events(), b.fired_events());
}

TEST(EventQueueModel, SimulationBatchPreservesFifoAgainstSingles) {
  // Events already pending at the batch instant fire first (lower seq);
  // batch members then fire in add() order, before anything later.
  Simulation sim;
  std::vector<int> order;
  sim.schedule(ns(10), [&order] { order.push_back(0); });
  sim.schedule(ns(5), [&] {
    EventBatch batch;
    for (int i = 0; i < 4; ++i) {
      batch.add([&order, i] { order.push_back(10 + i); });
    }
    sim.schedule_batch(SimTime::zero(), batch);
  });
  sim.schedule(ns(15), [&order] { order.push_back(1); });
  sim.run_until(ns(100));
  EXPECT_EQ(order, (std::vector<int>{10, 11, 12, 13, 0, 1}));
}

}  // namespace
}  // namespace tmc::sim
