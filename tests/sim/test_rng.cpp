#include "sim/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace tmc::sim {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
}

TEST(Rng, UniformCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(3);
  bool lo_seen = false, hi_seen = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    lo_seen |= (v == -5);
    hi_seen |= (v == 5);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(9);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ExponentialIsPositive) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, HyperexponentialMatchesMeanAndCv) {
  Rng rng(23);
  const double mean = 2.0, cv = 3.0;
  double sum = 0, sq = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.hyperexponential(mean, cv);
    sum += x;
    sq += x * x;
  }
  const double m = sum / n;
  const double var = sq / n - m * m;
  EXPECT_NEAR(m, mean, 0.1);
  EXPECT_NEAR(std::sqrt(var) / m, cv, 0.2);
}

TEST(Rng, HyperexponentialCvOneIsExponential) {
  Rng rng(29);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.hyperexponential(5.0, 1.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled.begin(), shuffled.end());
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(43), b(43);
  Rng ca = a.split(), cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next(), cb.next());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace tmc::sim
