#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace tmc::sim {
namespace {

TEST(Simulation, ClockStartsAtZero) {
  Simulation sim;
  EXPECT_EQ(sim.now(), SimTime::zero());
  EXPECT_TRUE(sim.idle());
}

TEST(Simulation, RunAdvancesClockToEventTimes) {
  Simulation sim;
  std::vector<SimTime> seen;
  sim.schedule(SimTime::seconds(2), [&] { seen.push_back(sim.now()); });
  sim.schedule(SimTime::seconds(1), [&] { seen.push_back(sim.now()); });
  sim.run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], SimTime::seconds(1));
  EXPECT_EQ(seen[1], SimTime::seconds(2));
  EXPECT_EQ(sim.now(), SimTime::seconds(2));
}

TEST(Simulation, ScheduleIsRelativeToNow) {
  Simulation sim;
  SimTime inner;
  sim.schedule(SimTime::seconds(1), [&] {
    sim.schedule(SimTime::seconds(1), [&] { inner = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner, SimTime::seconds(2));
}

TEST(Simulation, ScheduleAtAbsoluteTime) {
  Simulation sim;
  SimTime fired;
  sim.schedule_at(SimTime::seconds(5), [&] { fired = sim.now(); });
  sim.run();
  EXPECT_EQ(fired, SimTime::seconds(5));
}

TEST(Simulation, ZeroDelayFiresAtCurrentTime) {
  Simulation sim;
  SimTime fired = SimTime::max();
  sim.schedule(SimTime::seconds(3), [&] {
    sim.schedule(SimTime::zero(), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, SimTime::seconds(3));
}

TEST(Simulation, RunUntilStopsAtBoundaryInclusive) {
  Simulation sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule(SimTime::seconds(2), [&] { ++fired; });
  sim.schedule(SimTime::seconds(3), [&] { ++fired; });
  const auto n = sim.run_until(SimTime::seconds(2));
  EXPECT_EQ(n, 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), SimTime::seconds(2));
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, RunUntilAdvancesClockWithoutEvents) {
  Simulation sim;
  sim.run_until(SimTime::seconds(10));
  EXPECT_EQ(sim.now(), SimTime::seconds(10));
}

TEST(Simulation, StepFiresOneEvent) {
  Simulation sim;
  int fired = 0;
  sim.schedule(SimTime::seconds(1), [&] { ++fired; });
  sim.schedule(SimTime::seconds(2), [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulation, MaxEventsBoundsRun) {
  Simulation sim;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(SimTime::seconds(i + 1), [&] { ++fired; });
  }
  EXPECT_EQ(sim.run(4), 4u);
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(sim.pending_events(), 6u);
}

TEST(Simulation, CancelStopsScheduledEvent) {
  Simulation sim;
  bool fired = false;
  const EventId id = sim.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, FiredEventsCounts) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule(SimTime::seconds(1), [] {});
  sim.run();
  EXPECT_EQ(sim.fired_events(), 5u);
}

TEST(Simulation, DeterministicInterleavingAtSameTimestamp) {
  // Two identical runs must produce identical event orders.
  const auto run_once = [] {
    Simulation sim;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
      sim.schedule(SimTime::seconds(i % 5),
                   [&order, i] { order.push_back(i); });
    }
    sim.run();
    return order;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace tmc::sim
