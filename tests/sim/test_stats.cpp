#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace tmc::sim {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, MatchesClosedForm) {
  OnlineStats s;
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, SingleSampleHasZeroVariance) {
  OnlineStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 == 0 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, empty;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(empty);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  OnlineStats b;
  b.merge(a);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(OnlineStats, MergeIsOrderIndependent) {
  OnlineStats a1, b1, a2, b2;
  for (int i = 0; i < 40; ++i) {
    const double x = std::cos(i) * 3.0 + i;
    (i < 25 ? a1 : b1).add(x);
    (i < 25 ? a2 : b2).add(x);
  }
  a1.merge(b1);  // a ⊕ b
  b2.merge(a2);  // b ⊕ a
  EXPECT_EQ(a1.count(), b2.count());
  EXPECT_NEAR(a1.mean(), b2.mean(), 1e-9);
  EXPECT_NEAR(a1.variance(), b2.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a1.min(), b2.min());
  EXPECT_DOUBLE_EQ(a1.max(), b2.max());
}

TEST(OnlineStats, CvIsStddevOverMean) {
  OnlineStats s;
  s.add(1.0);
  s.add(3.0);
  // mean 2, var 2, sd sqrt(2)
  EXPECT_NEAR(s.cv(), std::sqrt(2.0) / 2.0, 1e-12);
}

TEST(OnlineStats, CiHalfWidthSmallSampleUsesT) {
  OnlineStats s;
  s.add(1.0);
  s.add(2.0);
  s.add(3.0);
  // sd = 1, se = 1/sqrt(3), t(2, .95) = 4.303
  EXPECT_NEAR(s.ci_half_width(0.95), 4.303 / std::sqrt(3.0), 1e-3);
}

TEST(OnlineStats, CiShrinksWithSamples) {
  OnlineStats small, big;
  for (int i = 0; i < 10; ++i) small.add(i % 3);
  for (int i = 0; i < 1000; ++i) big.add(i % 3);
  EXPECT_GT(small.ci_half_width(), big.ci_half_width());
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, CountsFallIntoBins) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(i + 0.5);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(h.bin_count(i), 1u);
  EXPECT_EQ(h.count(), 10u);
}

TEST(Histogram, OutOfRangeClampsAndCounts) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(42.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
}

TEST(Histogram, ClampedSamplesStillCountTowardTotal) {
  // Out-of-range values are clamped into the edge bins but separately
  // accounted, so `underflow + overflow <= count` and no sample vanishes.
  Histogram h(0.0, 10.0, 5);
  h.add(5.0);
  h.add(-3.0);
  h.add(-4.0);
  h.add(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 2u);  // the two clamped underflows
  EXPECT_EQ(h.bin_count(4), 1u);  // the clamped overflow
}

TEST(Histogram, ExposesConfiguredRange) {
  Histogram h(0.5, 2.5, 4);
  EXPECT_DOUBLE_EQ(h.lo(), 0.5);
  EXPECT_DOUBLE_EQ(h.hi(), 2.5);
}

TEST(Histogram, QuantileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, AsciiRendersOneLinePerBin) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  const std::string art = h.ascii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 2);
}

TEST(TimeWeighted, AveragesPiecewiseConstantSignal) {
  TimeWeighted tw;
  tw.update(SimTime::seconds(0), 2.0);   // value 2 on [0, 4)
  tw.update(SimTime::seconds(4), 6.0);   // value 6 on [4, 8)
  EXPECT_DOUBLE_EQ(tw.average(SimTime::seconds(8)), 4.0);
  EXPECT_DOUBLE_EQ(tw.peak(), 6.0);
  EXPECT_DOUBLE_EQ(tw.current(), 6.0);
}

TEST(TimeWeighted, RespectsObservationStart) {
  TimeWeighted tw(SimTime::seconds(10));
  tw.update(SimTime::seconds(10), 4.0);
  EXPECT_DOUBLE_EQ(tw.average(SimTime::seconds(20)), 4.0);
}

TEST(BusyTracker, TracksUtilization) {
  BusyTracker bt;
  bt.set_busy(SimTime::seconds(0), true);
  bt.set_busy(SimTime::seconds(3), false);
  bt.set_busy(SimTime::seconds(5), true);
  EXPECT_EQ(bt.busy_time(SimTime::seconds(10)), SimTime::seconds(8));
  EXPECT_DOUBLE_EQ(bt.utilization(SimTime::seconds(10)), 0.8);
}

TEST(BusyTracker, RedundantTransitionsAreIgnored) {
  BusyTracker bt;
  bt.set_busy(SimTime::seconds(0), true);
  bt.set_busy(SimTime::seconds(1), true);
  bt.set_busy(SimTime::seconds(2), false);
  EXPECT_EQ(bt.busy_time(SimTime::seconds(2)), SimTime::seconds(2));
}

TEST(BusyTracker, ZeroTimeUtilizationIsZero) {
  BusyTracker bt;
  EXPECT_DOUBLE_EQ(bt.utilization(SimTime::zero()), 0.0);
}

}  // namespace
}  // namespace tmc::sim
