// Differential tests for the streaming estimators.
//
// The sustained-serving mode quotes per-class p50/p95/p99 from P^2 markers
// and weighted reservoirs instead of sorted buffers, so these tests pin the
// estimators against the exact reference on the same draws: every claim is
// "the streaming answer lands within a quantile-rank tolerance of the
// sorted-buffer answer", checked across four input shapes (uniform,
// exponential, Pareto, bimodal) and a seed sweep. Rank error -- the fraction
// of reference samples between the estimate and the true quantile -- is the
// right metric because it is scale-free: a heavy Pareto tail can make the
// *value* error huge while the estimator is still placing the marker within
// a fraction of a percent of the right order statistic.
#include "sim/streaming_stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace tmc::sim {
namespace {

struct Shape {
  const char* name;
  std::function<double(Rng&)> draw;
};

std::vector<Shape> shapes() {
  return {
      {"uniform", [](Rng& rng) { return rng.uniform01(); }},
      {"exponential", [](Rng& rng) { return rng.exponential(1.0); }},
      {"pareto", [](Rng& rng) { return rng.pareto(1.5, 1.0); }},
      // Well-separated modes: the sorted reference has a plateau gap the
      // markers must not get stuck inside.
      {"bimodal",
       [](Rng& rng) {
         return rng.bernoulli(0.3) ? 10.0 + rng.uniform01()
                                   : rng.uniform01();
       }},
  };
}

/// Fraction of `sorted` strictly below x: the empirical CDF, i.e. the
/// quantile rank the estimate actually landed on.
double rank_of(const std::vector<double>& sorted, double x) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), x);
  return static_cast<double>(it - sorted.begin()) /
         static_cast<double>(sorted.size());
}

TEST(P2Quantile, MatchesSortedReferenceAcrossShapesAndSeeds) {
  constexpr int kSamples = 20000;
  for (const Shape& shape : shapes()) {
    for (const std::uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
      Rng rng(seed);
      P2Quantile p50(0.50), p95(0.95), p99(0.99);
      std::vector<double> all;
      all.reserve(kSamples);
      for (int i = 0; i < kSamples; ++i) {
        const double x = shape.draw(rng);
        all.push_back(x);
        p50.add(x);
        p95.add(x);
        p99.add(x);
      }
      std::sort(all.begin(), all.end());
      const std::string context =
          std::string(shape.name) + " seed " + std::to_string(seed);
      // P^2's five markers track the target rank to well under a percent
      // at this depth; 0.02 leaves room for the heavy-tailed shapes.
      EXPECT_NEAR(rank_of(all, p50.value()), 0.50, 0.02) << context;
      EXPECT_NEAR(rank_of(all, p95.value()), 0.95, 0.02) << context;
      EXPECT_NEAR(rank_of(all, p99.value()), 0.99, 0.01) << context;
    }
  }
}

TEST(P2Quantile, ExactBelowFiveSamples) {
  P2Quantile q(0.5);
  EXPECT_EQ(q.count(), 0u);
  for (const double x : {3.0, 1.0, 4.0}) q.add(x);
  // With fewer than five samples the estimator sorts what it has and
  // interpolates the exact empirical quantile.
  EXPECT_DOUBLE_EQ(q.value(), 3.0);
  EXPECT_EQ(q.count(), 3u);
  EXPECT_DOUBLE_EQ(q.min(), 1.0);
  EXPECT_DOUBLE_EQ(q.max(), 4.0);
}

TEST(P2Quantile, MonotoneInputRecoversTheRank) {
  // 1..10000 in order: the p-quantile of {1..n} is p*n up to interpolation.
  P2Quantile q(0.9);
  for (int i = 1; i <= 10000; ++i) q.add(i);
  EXPECT_NEAR(q.value(), 9000.0, 100.0);
}

TEST(QuantileTrio, TracksAllThreeTargets) {
  Rng rng(5);
  QuantileTrio trio;
  std::vector<double> all;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.exponential(2.0);
    all.push_back(x);
    trio.add(x);
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(trio.count(), 20000u);
  EXPECT_NEAR(rank_of(all, trio.p50.value()), 0.50, 0.02);
  EXPECT_NEAR(rank_of(all, trio.p95.value()), 0.95, 0.02);
  EXPECT_NEAR(rank_of(all, trio.p99.value()), 0.99, 0.01);
}

TEST(ReservoirSample, UnweightedQuantilesMatchSortedReference) {
  constexpr int kSamples = 20000;
  constexpr std::size_t kCapacity = 2048;
  for (const Shape& shape : shapes()) {
    for (const std::uint64_t seed : {2u, 11u, 303u}) {
      Rng data_rng(seed);
      ReservoirSample reservoir(kCapacity, /*seed=*/seed ^ 0xabcdefULL);
      std::vector<double> all;
      all.reserve(kSamples);
      for (int i = 0; i < kSamples; ++i) {
        const double x = shape.draw(data_rng);
        all.push_back(x);
        reservoir.add(x);
      }
      std::sort(all.begin(), all.end());
      ASSERT_EQ(reservoir.size(), kCapacity);
      EXPECT_EQ(reservoir.seen(), static_cast<std::uint64_t>(kSamples));
      const std::string context =
          std::string(shape.name) + " seed " + std::to_string(seed);
      // Sampling error at k=2048 is ~1/sqrt(k) = 2.2% per rank; 0.05 gives
      // >4 sigma of headroom so the sweep stays deterministic-green.
      for (const double p : {0.25, 0.50, 0.90, 0.95}) {
        EXPECT_NEAR(rank_of(all, reservoir.quantile(p)), p, 0.05) << context;
      }
    }
  }
}

TEST(ReservoirSample, KeepsEverythingUnderCapacity) {
  ReservoirSample reservoir(64, 9);
  for (int i = 0; i < 50; ++i) reservoir.add(i);
  const auto values = reservoir.sorted_values();
  ASSERT_EQ(values.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(values[static_cast<std::size_t>(i)], i);
}

TEST(ReservoirSample, HeavyWeightDominatesInclusion) {
  // A-Res inclusion probability is proportional to weight for dominant
  // items: one item carrying 1e6x the weight of 10000 others must survive
  // in every seed.
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u}) {
    ReservoirSample reservoir(32, seed);
    for (int i = 0; i < 10000; ++i) reservoir.add(1.0, 1.0);
    reservoir.add(777.0, 1e6);
    for (int i = 0; i < 10000; ++i) reservoir.add(1.0, 1.0);
    const auto values = reservoir.sorted_values();
    EXPECT_TRUE(std::find(values.begin(), values.end(), 777.0) != values.end())
        << "seed " << seed;
  }
}

TEST(ReservoirSample, DeterministicForFixedSeed) {
  ReservoirSample a(128, 77), b(128, 77);
  Rng ra(4), rb(4);
  for (int i = 0; i < 5000; ++i) a.add(ra.exponential(1.0));
  for (int i = 0; i < 5000; ++i) b.add(rb.exponential(1.0));
  EXPECT_EQ(a.sorted_values(), b.sorted_values());
}

TEST(SortedQuantile, InterpolatesBetweenOrderStatistics) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(sorted_quantile(v, 0.5), 2.5);
}

TEST(WindowedRate, AveragesPerWindowThroughput) {
  // 10 completions in [0,1)s, 0 in [1,2)s, 20 in [2,3)s at 1-second
  // windows: the closed-window rates are 10, 0, 20 per second.
  WindowedRate rate(SimTime::seconds(1));
  for (int i = 0; i < 10; ++i) {
    rate.record(SimTime::milliseconds(50 + i * 10));
  }
  for (int i = 0; i < 20; ++i) {
    rate.record(SimTime::milliseconds(2100 + i * 10));
  }
  rate.finish(SimTime::seconds(3));
  EXPECT_EQ(rate.rates().count(), 3u);
  EXPECT_DOUBLE_EQ(rate.rates().mean(), 10.0);
  EXPECT_DOUBLE_EQ(rate.rates().min(), 0.0);
  EXPECT_DOUBLE_EQ(rate.rates().max(), 20.0);
}

TEST(WindowedRate, ZeroFillsIdleGaps) {
  WindowedRate rate(SimTime::seconds(1));
  rate.record(SimTime::milliseconds(100));
  rate.record(SimTime::milliseconds(9500));
  rate.finish(SimTime::seconds(10));
  // Windows 1..8 were silent but still count toward the mean.
  EXPECT_EQ(rate.rates().count(), 10u);
  EXPECT_DOUBLE_EQ(rate.rates().mean(), 0.2);
}

}  // namespace
}  // namespace tmc::sim
