#include "sim/time.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tmc::sim {
namespace {

TEST(SimTime, DefaultIsZero) {
  SimTime t;
  EXPECT_TRUE(t.is_zero());
  EXPECT_EQ(t.ns(), 0);
}

TEST(SimTime, UnitFactories) {
  EXPECT_EQ(SimTime::nanoseconds(7).ns(), 7);
  EXPECT_EQ(SimTime::microseconds(3).ns(), 3'000);
  EXPECT_EQ(SimTime::milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(SimTime::seconds(1).ns(), 1'000'000'000);
}

TEST(SimTime, ToSeconds) {
  EXPECT_DOUBLE_EQ(SimTime::milliseconds(1500).to_seconds(), 1.5);
  EXPECT_DOUBLE_EQ(SimTime::microseconds(250).to_milliseconds(), 0.25);
}

TEST(SimTime, Comparisons) {
  const auto a = SimTime::microseconds(1);
  const auto b = SimTime::microseconds(2);
  EXPECT_LT(a, b);
  EXPECT_LE(a, a);
  EXPECT_GT(b, a);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, SimTime::nanoseconds(1000));
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::milliseconds(3);
  const auto b = SimTime::milliseconds(1);
  EXPECT_EQ((a + b).ns(), 4'000'000);
  EXPECT_EQ((a - b).ns(), 2'000'000);
  EXPECT_EQ((a * 3).ns(), 9'000'000);
  EXPECT_EQ((3 * a).ns(), 9'000'000);
  EXPECT_EQ((a / 3).ns(), 1'000'000);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
}

TEST(SimTime, CompoundAssignment) {
  auto t = SimTime::seconds(1);
  t += SimTime::milliseconds(500);
  EXPECT_EQ(t.ns(), 1'500'000'000);
  t -= SimTime::seconds(2);
  EXPECT_TRUE(t.is_negative());
}

TEST(SimTime, MaxActsAsInfinity) {
  EXPECT_GT(SimTime::max(), SimTime::seconds(1'000'000));
}

TEST(SimTime, ScaleRoundsToNearest) {
  EXPECT_EQ(scale(SimTime::nanoseconds(10), 0.26).ns(), 3);
  EXPECT_EQ(scale(SimTime::nanoseconds(10), 0.24).ns(), 2);
  EXPECT_EQ(scale(SimTime::nanoseconds(-10), 0.26).ns(), -3);
  EXPECT_EQ(scale(SimTime::seconds(2), 1.5), SimTime::seconds(3));
}

TEST(SimTime, StreamInsertion) {
  std::ostringstream os;
  os << SimTime::milliseconds(1500);
  EXPECT_EQ(os.str(), "1.5s");
}

}  // namespace
}  // namespace tmc::sim
