#include "sim/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tmc::sim {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled(TraceCategory::kKernel));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kAll));
}

TEST(Tracer, EnableRoutesMatchingCategoriesToSink) {
  Tracer tracer;
  std::vector<std::string> lines;
  tracer.enable(static_cast<unsigned>(TraceCategory::kCpu),
                [&lines](std::string_view line) {
                  lines.emplace_back(line);
                });
  EXPECT_TRUE(tracer.enabled(TraceCategory::kCpu));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kNetwork));
  tracer.emit(SimTime::microseconds(3), TraceCategory::kCpu, "cpu0",
              "dispatch");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("cpu0"), std::string::npos);
  EXPECT_NE(lines[0].find("dispatch"), std::string::npos);
}

TEST(Tracer, NullSinkForcesMaskToZero) {
  // Regression: enable(mask, nullptr) used to leave the mask set, so the
  // first traced event invoked an empty std::function and threw
  // std::bad_function_call mid-simulation.
  Tracer tracer;
  tracer.enable(static_cast<unsigned>(TraceCategory::kAll), nullptr);
  EXPECT_FALSE(tracer.enabled(TraceCategory::kKernel));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kAll));
  // emit() must be a harmless no-op even when called directly.
  EXPECT_NO_THROW(tracer.emit(SimTime::zero(), TraceCategory::kKernel, "c",
                              "m"));
}

TEST(Tracer, DisableClearsEarlierEnable) {
  Tracer tracer;
  std::size_t calls = 0;
  tracer.enable(static_cast<unsigned>(TraceCategory::kAll),
                [&calls](std::string_view) { ++calls; });
  tracer.disable();
  EXPECT_FALSE(tracer.enabled(TraceCategory::kMemory));
  tracer.emit(SimTime::zero(), TraceCategory::kMemory, "mmu", "grant");
  EXPECT_EQ(calls, 0u);
}

}  // namespace
}  // namespace tmc::sim
