#include "sim/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace tmc::sim {
namespace {

TEST(Tracer, DisabledByDefault) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled(TraceCategory::kKernel));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kAll));
}

TEST(Tracer, EnableRoutesMatchingCategoriesToSink) {
  Tracer tracer;
  std::vector<std::string> lines;
  tracer.enable(static_cast<unsigned>(TraceCategory::kCpu),
                [&lines](std::string_view line) {
                  lines.emplace_back(line);
                });
  EXPECT_TRUE(tracer.enabled(TraceCategory::kCpu));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kNetwork));
  tracer.emit(SimTime::microseconds(3), TraceCategory::kCpu, "cpu0",
              "dispatch");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("cpu0"), std::string::npos);
  EXPECT_NE(lines[0].find("dispatch"), std::string::npos);
}

TEST(Tracer, NullSinkForcesMaskToZero) {
  // Regression: enable(mask, nullptr) used to leave the mask set, so the
  // first traced event invoked an empty std::function and threw
  // std::bad_function_call mid-simulation.
  Tracer tracer;
  tracer.enable(static_cast<unsigned>(TraceCategory::kAll), nullptr);
  EXPECT_FALSE(tracer.enabled(TraceCategory::kKernel));
  EXPECT_FALSE(tracer.enabled(TraceCategory::kAll));
  // emit() must be a harmless no-op even when called directly.
  EXPECT_NO_THROW(tracer.emit(SimTime::zero(), TraceCategory::kKernel, "c",
                              "m"));
}

TEST(Tracer, DisableClearsEarlierEnable) {
  Tracer tracer;
  std::size_t calls = 0;
  tracer.enable(static_cast<unsigned>(TraceCategory::kAll),
                [&calls](std::string_view) { ++calls; });
  tracer.disable();
  EXPECT_FALSE(tracer.enabled(TraceCategory::kMemory));
  tracer.emit(SimTime::zero(), TraceCategory::kMemory, "mmu", "grant");
  EXPECT_EQ(calls, 0u);
}

TEST(Tracer, LineFormatMatchesLegacyOstreamOutput) {
  // The TraceLine rewrite must not change a byte of the emitted lines:
  // scripts (and the golden diffing habit) parse "%.6f [cat] comp: msg".
  Tracer tracer;
  std::vector<std::string> lines;
  tracer.enable(static_cast<unsigned>(TraceCategory::kAll),
                [&lines](std::string_view line) { lines.emplace_back(line); });
  tracer.emit(SimTime::microseconds(1500), TraceCategory::kNetwork, "net",
              "m7 parked");
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "0.001500 [net] net: m7 parked");
}

TEST(TraceLine, StreamsLikeOstream) {
  std::string buf;
  TraceLine line(buf);
  line << "p" << 42 << " took " << 1.5 << "ms flag=" << true << ' '
       << std::string("tail");
  EXPECT_EQ(line.view(), "p42 took 1.5ms flag=true tail");
}

TEST(Tracer, StructuredSinkReceivesParsedFields) {
  Tracer tracer;
  SimTime when;
  TraceCategory cat{};
  std::string component, message;
  tracer.enable_structured(
      static_cast<unsigned>(TraceCategory::kCpu),
      [&](SimTime now, TraceCategory c, std::string_view comp,
          std::string_view msg) {
        when = now;
        cat = c;
        component = comp;
        message = msg;
      });
  EXPECT_TRUE(tracer.enabled(TraceCategory::kCpu));
  tracer.emit(SimTime::microseconds(9), TraceCategory::kCpu, "cpu3",
              "dispatch p1");
  EXPECT_EQ(when, SimTime::microseconds(9));
  EXPECT_EQ(cat, TraceCategory::kCpu);
  EXPECT_EQ(component, "cpu3");
  EXPECT_EQ(message, "dispatch p1");
}

TEST(Tracer, LineAndStructuredMasksAreIndependent) {
  Tracer tracer;
  std::size_t line_calls = 0, struct_calls = 0;
  tracer.enable(static_cast<unsigned>(TraceCategory::kCpu),
                [&line_calls](std::string_view) { ++line_calls; });
  tracer.enable_structured(
      static_cast<unsigned>(TraceCategory::kNetwork),
      [&struct_calls](SimTime, TraceCategory, std::string_view,
                      std::string_view) { ++struct_calls; });
  // enabled() is the union: TMC_TRACE sites format once for either consumer.
  EXPECT_TRUE(tracer.enabled(TraceCategory::kCpu));
  EXPECT_TRUE(tracer.enabled(TraceCategory::kNetwork));
  tracer.emit(SimTime::zero(), TraceCategory::kCpu, "cpu0", "x");
  tracer.emit(SimTime::zero(), TraceCategory::kNetwork, "net", "y");
  EXPECT_EQ(line_calls, 1u);
  EXPECT_EQ(struct_calls, 1u);
}

TEST(Tracer, NullStructuredSinkForcesStructuredMaskToZero) {
  Tracer tracer;
  tracer.enable_structured(static_cast<unsigned>(TraceCategory::kAll),
                           nullptr);
  EXPECT_FALSE(tracer.enabled(TraceCategory::kCpu));
  EXPECT_NO_THROW(
      tracer.emit(SimTime::zero(), TraceCategory::kCpu, "cpu0", "x"));
}

}  // namespace
}  // namespace tmc::sim
