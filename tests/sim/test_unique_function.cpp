#include "sim/unique_function.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace tmc::sim {
namespace {

TEST(UniqueFunction, DefaultIsEmpty) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(f);
}

TEST(UniqueFunction, NullptrConstructibleIsEmpty) {
  UniqueFunction<void()> f = nullptr;
  EXPECT_FALSE(f);
}

TEST(UniqueFunction, InvokesStoredCallable) {
  int hits = 0;
  UniqueFunction<void()> f = [&] { ++hits; };
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, ForwardsArgumentsAndReturn) {
  UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto owned = std::make_unique<std::string>("payload");
  UniqueFunction<std::string()> f = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(f(), "payload");
}

TEST(UniqueFunction, AcceptsMoveOnlyParameters) {
  UniqueFunction<int(std::unique_ptr<int>)> f =
      [](std::unique_ptr<int> p) { return *p; };
  EXPECT_EQ(f(std::make_unique<int>(9)), 9);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int hits = 0;
  UniqueFunction<void()> a = [&] { ++hits; };
  UniqueFunction<void()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): documented contract
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, MoveAssignReplacesTarget) {
  int first = 0, second = 0;
  UniqueFunction<void()> f = [&] { ++first; };
  f = [&] { ++second; };
  f();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(UniqueFunction, MutableLambdaKeepsState) {
  UniqueFunction<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
}

}  // namespace
}  // namespace tmc::sim
