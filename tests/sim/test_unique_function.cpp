#include "sim/unique_function.h"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace tmc::sim {
namespace {

TEST(UniqueFunction, DefaultIsEmpty) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(f);
}

TEST(UniqueFunction, NullptrConstructibleIsEmpty) {
  UniqueFunction<void()> f = nullptr;
  EXPECT_FALSE(f);
}

TEST(UniqueFunction, InvokesStoredCallable) {
  int hits = 0;
  UniqueFunction<void()> f = [&] { ++hits; };
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(UniqueFunction, ForwardsArgumentsAndReturn) {
  UniqueFunction<int(int, int)> add = [](int a, int b) { return a + b; };
  EXPECT_EQ(add(2, 3), 5);
}

TEST(UniqueFunction, HoldsMoveOnlyCapture) {
  auto owned = std::make_unique<std::string>("payload");
  UniqueFunction<std::string()> f = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(f(), "payload");
}

TEST(UniqueFunction, AcceptsMoveOnlyParameters) {
  UniqueFunction<int(std::unique_ptr<int>)> f =
      [](std::unique_ptr<int> p) { return *p; };
  EXPECT_EQ(f(std::make_unique<int>(9)), 9);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int hits = 0;
  UniqueFunction<void()> a = [&] { ++hits; };
  UniqueFunction<void()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): documented contract
  EXPECT_TRUE(b);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(UniqueFunction, MoveAssignReplacesTarget) {
  int first = 0, second = 0;
  UniqueFunction<void()> f = [&] { ++first; };
  f = [&] { ++second; };
  f();
  EXPECT_EQ(first, 0);
  EXPECT_EQ(second, 1);
}

TEST(UniqueFunction, MutableLambdaKeepsState) {
  UniqueFunction<int()> counter = [n = 0]() mutable { return ++n; };
  EXPECT_EQ(counter(), 1);
  EXPECT_EQ(counter(), 2);
}

TEST(UniqueFunction, SmallCapturesAreStoredInline) {
  std::array<std::uint64_t, 4> payload{1, 2, 3, 4};  // 32 bytes
  UniqueFunction<std::uint64_t()> f = [payload] { return payload[0]; };
  EXPECT_TRUE(f.uses_inline_storage());
  EXPECT_EQ(f(), 1u);
}

TEST(UniqueFunction, MoveOnlyCapturesAreStoredInline) {
  auto owned = std::make_unique<int>(11);
  UniqueFunction<int()> f = [p = std::move(owned)] { return *p; };
  EXPECT_TRUE(f.uses_inline_storage());
  UniqueFunction<int()> moved = std::move(f);
  EXPECT_TRUE(moved.uses_inline_storage());
  EXPECT_EQ(moved(), 11);
}

TEST(UniqueFunction, OversizedCapturesFallBackToHeap) {
  std::array<std::uint64_t, 16> payload{};  // 128 bytes > kInlineSize
  payload[15] = 99;
  UniqueFunction<std::uint64_t()> f = [payload] { return payload[15]; };
  EXPECT_FALSE(f.uses_inline_storage());
  EXPECT_EQ(f(), 99u);
  UniqueFunction<std::uint64_t()> moved = std::move(f);
  EXPECT_FALSE(moved.uses_inline_storage());
  EXPECT_EQ(moved(), 99u);
}

TEST(UniqueFunction, ThrowingMoveCapturesFallBackToHeap) {
  // Inline storage relocates with the callable's move constructor, so a
  // potentially-throwing move must live on the heap (pointer relocation).
  struct ThrowingMove {
    ThrowingMove() = default;
    ThrowingMove(ThrowingMove&&) noexcept(false) {}
    int value = 5;
  };
  static_assert(!UniqueFunction<int()>::stores_inline<ThrowingMove>());
  ThrowingMove capture;
  UniqueFunction<int()> f = [capture = std::move(capture)] {
    return capture.value;
  };
  EXPECT_FALSE(f.uses_inline_storage());
  EXPECT_EQ(f(), 5);
}

TEST(UniqueFunction, MovedFromIsEmptyAndReassignable) {
  UniqueFunction<int()> a = [] { return 1; };
  UniqueFunction<int()> b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): documented contract
  EXPECT_FALSE(a.uses_inline_storage());
  a = [] { return 2; };
  EXPECT_TRUE(a);
  EXPECT_EQ(a(), 2);
  EXPECT_EQ(b(), 1);
}

TEST(UniqueFunction, MoveAssignDestroysPreviousTarget) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  UniqueFunction<void()> f = [t = std::move(token)] { (void)t; };
  EXPECT_FALSE(watch.expired());
  f = [] {};
  EXPECT_TRUE(watch.expired());
}

TEST(UniqueFunction, HeapCaptureDestroyedExactlyOnce) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  struct Big {
    std::shared_ptr<int> keep;
    std::array<std::byte, 64> pad{};
  };
  {
    UniqueFunction<void()> f = [big = Big{std::move(token), {}}] {
      (void)big;
    };
    EXPECT_FALSE(f.uses_inline_storage());
    UniqueFunction<void()> g = std::move(f);
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

}  // namespace
}  // namespace tmc::sim
