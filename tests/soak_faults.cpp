// Soak test: sustained serving under continuous crash/recover cycles must
// not grow.
//
// The recovery path is where a simulator leaks: every crash aborts resident
// processes mid-flight (parked worms, queued mailbox allocations, pending
// MMU grants, half-built spans), and every repair re-forms partitions and
// requeues jobs. This binary overrides global operator new/delete with
// counting versions, runs the open-arrival serving loop over a WORMHOLE
// machine (so crash teardown also exercises the worm-slot pool) with node
// crashes, link flaps and message drops all armed, and fails unless
//   (1) live heap allocations PLATEAU: after the first quarter of the run,
//       the live count never exceeds the quarter-mark count by more than a
//       fixed headroom -- flat in the number of crash/recover episodes;
//   (2) simulated time and completions are MONOTONE across checkpoints;
//   (3) every admitted job retired its slot: finished, or exhausted its
//       restart budget and was counted lost. Nothing leaks, nothing hangs.
// Default 200k jobs (~thousands of fault episodes); TMC_SOAK_JOBS scales.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/serve.h"

namespace {

std::atomic<std::int64_t> g_live_allocs{0};
std::atomic<std::int64_t> g_total_allocs{0};

void* counted_alloc(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_live_allocs.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace {

using namespace tmc;

std::vector<workload::JobClass> soak_mix() {
  workload::JobClass interactive;
  interactive.name = "interactive";
  interactive.weight = 3.0;
  interactive.service.kind = workload::ServiceModel::Kind::kExponential;
  interactive.service.mean_s = 0.08;
  interactive.arch = sched::SoftwareArch::kAdaptive;

  workload::JobClass batch;
  batch.name = "batch";
  batch.weight = 1.0;
  batch.service.kind = workload::ServiceModel::Kind::kPareto;
  batch.service.mean_s = 0.5;
  batch.service.shape = 1.6;
  batch.service.cap_s = 10.0;
  batch.arch = sched::SoftwareArch::kAdaptive;
  return {interactive, batch};
}

struct Snapshot {
  core::ServeCheckpoint checkpoint;
  std::int64_t live_allocs = 0;
};

int run() {
  std::uint64_t jobs = 200'000;
  if (const char* env = std::getenv("TMC_SOAK_JOBS")) {
    const unsigned long long parsed = std::strtoull(env, nullptr, 10);
    if (parsed < 100) {
      std::fprintf(stderr, "soak_faults: TMC_SOAK_JOBS must be >= 100\n");
      return 2;
    }
    jobs = parsed;
  }

  core::ServeConfig config;
  config.machine.wormhole = true;  // crash teardown hits the worm-slot pool
  config.machine.policy.kind = sched::PolicyKind::kHybrid;
  config.machine.policy.partition_size = 4;
  // Aggressive fault processes: at rate 25/s a 200k-job run covers ~8000
  // simulated seconds, i.e. ~25k node crash/recover cycles at MTBF 5 s.
  config.machine.faults.node_rate = 0.2;
  config.machine.faults.node_mttr_s = 0.3;
  config.machine.faults.link_rate = 0.05;
  config.machine.faults.link_mttr_s = 0.2;
  config.machine.faults.drop_prob = 0.01;
  config.machine.faults.heartbeat_s = 0.1;
  config.process.kind = workload::ArrivalProcess::Kind::kPoisson;
  config.process.rate_per_s = 25.0;
  config.classes = soak_mix();
  config.total_jobs = jobs;
  config.warmup_jobs = jobs / 10;
  config.seed = 1;
  config.checkpoint_every = jobs / 40;

  std::vector<Snapshot> snapshots;
  config.checkpoint = [&snapshots](const core::ServeCheckpoint& cp) {
    snapshots.push_back(
        {cp, g_live_allocs.load(std::memory_order_relaxed)});
  };

  const core::ServeResult result = core::run_sustained(config);

  int failures = 0;
  const auto fail = [&failures](const char* what) {
    std::fprintf(stderr, "soak_faults: FAIL: %s\n", what);
    ++failures;
  };

  if (result.completed != result.admitted) fail("admitted jobs went missing");
  if (result.completed + result.shed != jobs) fail("arrivals not conserved");
  if (result.machine.faults.crashes == 0) fail("no crashes were injected");
  if (result.machine.faults.repairs == 0) fail("no repairs happened");
  if (snapshots.size() < 10) fail("too few checkpoints to judge a plateau");

  // Monotone forward progress -- under faults this additionally proves the
  // requeue/restart path never replays or loses a completion.
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    if (snapshots[i].checkpoint.now_s < snapshots[i - 1].checkpoint.now_s) {
      fail("simulated time went backwards between checkpoints");
      break;
    }
    if (snapshots[i].checkpoint.completed <=
        snapshots[i - 1].checkpoint.completed) {
      fail("completion counter did not advance between checkpoints");
      break;
    }
  }

  // Allocation plateau after the first quarter: the job arena, the worm-slot
  // pool and the fault machinery must all recycle across episodes. The
  // headroom absorbs churn; it must NOT absorb per-episode growth, which at
  // thousands of crash cycles would dwarf it.
  const std::size_t quarter = snapshots.size() / 4;
  const std::int64_t at_quarter = snapshots[quarter].live_allocs;
  const std::int64_t headroom =
      std::max<std::int64_t>(2'000, at_quarter / 5);
  std::int64_t peak_after = 0;
  for (std::size_t i = quarter; i < snapshots.size(); ++i) {
    peak_after = std::max(peak_after, snapshots[i].live_allocs);
  }
  std::fprintf(stderr,
               "soak_faults: %llu jobs, %llu crashes / %llu repairs, "
               "%llu restarts, %llu lost, live allocs %lld @25%% -> "
               "peak %lld after (headroom %lld), %lld total allocs\n",
               static_cast<unsigned long long>(jobs),
               static_cast<unsigned long long>(result.machine.faults.crashes),
               static_cast<unsigned long long>(result.machine.faults.repairs),
               static_cast<unsigned long long>(
                   result.machine.faults.job_restarts),
               static_cast<unsigned long long>(result.jobs_lost),
               static_cast<long long>(at_quarter),
               static_cast<long long>(peak_after),
               static_cast<long long>(headroom),
               static_cast<long long>(
                   g_total_allocs.load(std::memory_order_relaxed)));
  if (peak_after > at_quarter + headroom) {
    fail("live allocation count kept growing across crash/recover cycles");
  }

  if (failures == 0) {
    std::fprintf(stderr, "soak_faults: PASS\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main() { return run(); }
