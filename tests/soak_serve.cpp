// Soak test: a long open-arrival serving run must not grow.
//
// Overrides global operator new/delete with counting versions, runs the
// sustained serving loop (default one million jobs; TMC_SOAK_JOBS scales it
// down for CI and sanitizer builds), snapshots the live-allocation count at
// every checkpoint, and fails unless
//   (1) live heap allocations PLATEAU: after the first quarter of the run,
//       the live count never exceeds the quarter-mark count by more than a
//       small fixed headroom (job churn), i.e. memory is flat in the number
//       of jobs served;
//   (2) simulated time and the completion counter are MONOTONE across
//       checkpoints (forward progress, no replayed or lost completions);
//   (3) the run completes: every admitted job finished.
// This is the allocation-counter twin of bench/serve_sustained --rss-check:
// RSS can hide growth inside freed-but-retained pages, allocation counts
// cannot.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/serve.h"

namespace {

std::atomic<std::int64_t> g_live_allocs{0};
std::atomic<std::int64_t> g_total_allocs{0};

void* counted_alloc(std::size_t size) {
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  g_live_allocs.fetch_sub(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }

namespace {

using namespace tmc;

std::vector<workload::JobClass> soak_mix() {
  workload::JobClass interactive;
  interactive.name = "interactive";
  interactive.weight = 3.0;
  interactive.service.kind = workload::ServiceModel::Kind::kExponential;
  interactive.service.mean_s = 0.08;
  interactive.arch = sched::SoftwareArch::kAdaptive;

  workload::JobClass batch;
  batch.name = "batch";
  batch.weight = 1.0;
  batch.service.kind = workload::ServiceModel::Kind::kPareto;
  batch.service.mean_s = 0.5;
  batch.service.shape = 1.6;
  batch.service.cap_s = 10.0;
  batch.arch = sched::SoftwareArch::kAdaptive;
  return {interactive, batch};
}

struct Snapshot {
  core::ServeCheckpoint checkpoint;
  std::int64_t live_allocs = 0;
};

int run() {
  std::uint64_t jobs = 1'000'000;
  if (const char* env = std::getenv("TMC_SOAK_JOBS")) {
    const unsigned long long parsed = std::strtoull(env, nullptr, 10);
    if (parsed < 100) {
      std::fprintf(stderr, "soak_serve: TMC_SOAK_JOBS must be >= 100\n");
      return 2;
    }
    jobs = parsed;
  }

  core::ServeConfig config;
  config.machine.policy.kind = sched::PolicyKind::kHybrid;
  config.machine.policy.partition_size = 4;
  config.process.kind = workload::ArrivalProcess::Kind::kPoisson;
  config.process.rate_per_s = 25.0;
  config.classes = soak_mix();
  config.total_jobs = jobs;
  config.warmup_jobs = jobs / 10;
  config.seed = 1;
  config.checkpoint_every = jobs / 40;

  std::vector<Snapshot> snapshots;
  config.checkpoint = [&snapshots](const core::ServeCheckpoint& cp) {
    snapshots.push_back(
        {cp, g_live_allocs.load(std::memory_order_relaxed)});
  };

  const core::ServeResult result = core::run_sustained(config);

  int failures = 0;
  const auto fail = [&failures](const char* what) {
    std::fprintf(stderr, "soak_serve: FAIL: %s\n", what);
    ++failures;
  };

  if (result.completed != result.admitted) fail("admitted jobs went missing");
  if (result.completed + result.shed != jobs) fail("arrivals not conserved");
  if (snapshots.size() < 10) fail("too few checkpoints to judge a plateau");

  // Monotone forward progress.
  for (std::size_t i = 1; i < snapshots.size(); ++i) {
    if (snapshots[i].checkpoint.now_s < snapshots[i - 1].checkpoint.now_s) {
      fail("simulated time went backwards between checkpoints");
      break;
    }
    if (snapshots[i].checkpoint.completed <=
        snapshots[i - 1].checkpoint.completed) {
      fail("completion counter did not advance between checkpoints");
      break;
    }
  }

  // Allocation plateau after the first quarter. The headroom absorbs job
  // churn (live jobs fluctuate with the Poisson stream) and container
  // growth that doubles at most once more after warmup; what it must NOT
  // absorb is per-job growth, which at 3/4 of a run is ~jobs/2 allocations.
  const std::size_t quarter = snapshots.size() / 4;
  const std::int64_t at_quarter = snapshots[quarter].live_allocs;
  const std::int64_t headroom =
      std::max<std::int64_t>(2'000, at_quarter / 5);
  std::int64_t peak_after = 0;
  for (std::size_t i = quarter; i < snapshots.size(); ++i) {
    peak_after = std::max(peak_after, snapshots[i].live_allocs);
  }
  std::fprintf(stderr,
               "soak_serve: %llu jobs, %zu checkpoints, live allocs "
               "%lld @25%% -> peak %lld after (headroom %lld), "
               "%lld total allocs, peak live jobs %zu\n",
               static_cast<unsigned long long>(jobs), snapshots.size(),
               static_cast<long long>(at_quarter),
               static_cast<long long>(peak_after),
               static_cast<long long>(headroom),
               static_cast<long long>(
                   g_total_allocs.load(std::memory_order_relaxed)),
               result.peak_live_jobs);
  if (peak_after > at_quarter + headroom) {
    fail("live allocation count kept growing after the first quarter");
  }

  if (failures == 0) {
    std::fprintf(stderr, "soak_serve: PASS\n");
    return 0;
  }
  return 1;
}

}  // namespace

int main() { return run(); }
