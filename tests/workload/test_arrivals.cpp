// workload::arrivals -- the open-ended traffic source for sustained serving.
//
// Pins three contracts: (1) the RNG draw-order discipline (class, then
// service, then interarrival) that keeps replays byte-identical, (2) each
// arrival process's long-run statistics (Poisson/MMPP rates, diurnal
// modulation, trace replay), and (3) the service models' means, caps, and
// floor.
#include "workload/arrivals.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/rng.h"

namespace tmc::workload {
namespace {

JobClass fixed_class(const char* name, double weight, double mean_s) {
  JobClass cls;
  cls.name = name;
  cls.weight = weight;
  cls.service.kind = ServiceModel::Kind::kFixed;
  cls.service.mean_s = mean_s;
  return cls;
}

TEST(ArrivalStream, PoissonDrawOrderIsClassServiceInterarrival) {
  ArrivalProcess process;
  process.kind = ArrivalProcess::Kind::kPoisson;
  process.rate_per_s = 2.0;
  std::vector<JobClass> classes{fixed_class("a", 1.0, 1.0),
                                fixed_class("b", 3.0, 2.0)};
  classes[1].service.kind = ServiceModel::Kind::kExponential;
  ArrivalStream stream(process, classes, /*seed=*/17);

  // Replay the documented draw order against a raw generator with the same
  // seed: one uniform for the class pick, the service draw (zero draws for
  // kFixed, one for exponential), one exponential for the gap.
  sim::Rng rng(17);
  double clock_s = 0.0;
  for (int i = 0; i < 200; ++i) {
    const std::size_t expect_class = rng.uniform01() < 0.25 ? 0u : 1u;
    double expect_demand = 1.0;
    if (expect_class == 1) {
      expect_demand = std::max(rng.exponential(2.0), 1e-4);
    }
    clock_s += rng.exponential(0.5);

    Arrival arrival;
    ASSERT_TRUE(stream.next(arrival));
    EXPECT_EQ(arrival.job_class, expect_class) << "arrival " << i;
    EXPECT_DOUBLE_EQ(arrival.demand_s, expect_demand) << "arrival " << i;
    EXPECT_DOUBLE_EQ(arrival.at_s, clock_s) << "arrival " << i;
  }
}

TEST(ArrivalStream, PoissonLongRunRateMatches) {
  ArrivalProcess process;
  process.kind = ArrivalProcess::Kind::kPoisson;
  process.rate_per_s = 10.0;
  ArrivalStream stream(process, {fixed_class("only", 1.0, 0.1)}, 3);
  Arrival arrival;
  constexpr int kCount = 100000;
  for (int i = 0; i < kCount; ++i) ASSERT_TRUE(stream.next(arrival));
  const double measured = kCount / arrival.at_s;
  EXPECT_NEAR(measured, 10.0, 0.2);
}

TEST(ArrivalStream, MmppLongRunRateMatchesStationaryMixture) {
  ArrivalProcess process;
  process.kind = ArrivalProcess::Kind::kMmpp;
  process.rate_per_s = 5.0;
  process.burst_rate_per_s = 50.0;
  process.base_sojourn_s = 30.0;
  process.burst_sojourn_s = 10.0;
  // Stationary rate = (5*30 + 50*10) / 40 = 16.25.
  EXPECT_DOUBLE_EQ(process.mean_rate_per_s(), 16.25);

  ArrivalStream stream(process, {fixed_class("only", 1.0, 0.1)}, 11);
  Arrival arrival;
  double last = 0.0;
  constexpr int kCount = 200000;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(stream.next(arrival));
    ASSERT_GE(arrival.at_s, last);
    last = arrival.at_s;
  }
  // ~300 sojourn cycles at this depth: 5% tolerance on the mixture rate.
  EXPECT_NEAR(kCount / arrival.at_s, 16.25, 16.25 * 0.05);
}

TEST(ArrivalStream, DiurnalModulatesWithinThePeriod) {
  ArrivalProcess process;
  process.kind = ArrivalProcess::Kind::kDiurnal;
  process.rate_per_s = 10.0;
  process.period_s = 100.0;
  process.amplitude = 0.8;
  ArrivalStream stream(process, {fixed_class("only", 1.0, 0.1)}, 23);

  // sin > 0 over the first half of each period (the "day"), < 0 over the
  // second: with amplitude 0.8 the day/night rate ratio is 9 at the
  // extremes; counting arrivals per half-period must show the skew.
  std::uint64_t day = 0, night = 0;
  Arrival arrival;
  for (int i = 0; i < 100000; ++i) {
    ASSERT_TRUE(stream.next(arrival));
    const double phase = std::fmod(arrival.at_s, 100.0);
    (phase < 50.0 ? day : night) += 1;
  }
  EXPECT_GT(day, night * 2);
  // The sinusoid integrates out: the long-run mean still matches.
  EXPECT_NEAR(100000 / arrival.at_s, 10.0, 0.5);
}

class TraceFile {
 public:
  explicit TraceFile(const std::string& contents) {
    path_ = testing::TempDir() + "arrival_trace_" +
            std::to_string(counter_++) + ".txt";
    std::ofstream out(path_);
    out << contents;
  }
  ~TraceFile() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TraceFile::counter_ = 0;

ArrivalProcess trace_process(const std::string& path) {
  ArrivalProcess process;
  process.kind = ArrivalProcess::Kind::kTrace;
  process.trace_path = path;
  return process;
}

TEST(ArrivalStream, TraceReplayParsesCommentsAndDemandColumn) {
  const TraceFile trace(
      "# time_s class [demand_s]\n"
      "\n"
      "0.5 0 2.5\n"
      "1.0 1   # demand drawn from the class service model\n"
      "1.0 0 0.25\n");
  ArrivalStream stream(trace_process(trace.path()),
                       {fixed_class("a", 1.0, 1.0), fixed_class("b", 1.0, 4.0)},
                       5);
  Arrival arrival;
  ASSERT_TRUE(stream.next(arrival));
  EXPECT_DOUBLE_EQ(arrival.at_s, 0.5);
  EXPECT_EQ(arrival.job_class, 0u);
  EXPECT_DOUBLE_EQ(arrival.demand_s, 2.5);
  ASSERT_TRUE(stream.next(arrival));
  EXPECT_EQ(arrival.job_class, 1u);
  EXPECT_DOUBLE_EQ(arrival.demand_s, 4.0);  // kFixed class draw
  ASSERT_TRUE(stream.next(arrival));  // equal timestamps are legal
  EXPECT_DOUBLE_EQ(arrival.at_s, 1.0);
  EXPECT_FALSE(stream.next(arrival));  // end of trace, stream is finite
}

TEST(ArrivalStream, TraceRejectsMalformedLines) {
  const TraceFile backwards("1.0 0\n0.5 0\n");
  ArrivalStream time_travel(trace_process(backwards.path()),
                            {fixed_class("a", 1.0, 1.0)}, 1);
  Arrival arrival;
  ASSERT_TRUE(time_travel.next(arrival));
  EXPECT_THROW((void)time_travel.next(arrival), std::runtime_error);

  const TraceFile bad_class("0.5 7\n");
  ArrivalStream out_of_range(trace_process(bad_class.path()),
                             {fixed_class("a", 1.0, 1.0)}, 1);
  EXPECT_THROW((void)out_of_range.next(arrival), std::runtime_error);

  EXPECT_THROW(ArrivalStream(trace_process("/nonexistent/trace.txt"),
                             {fixed_class("a", 1.0, 1.0)}, 1),
               std::runtime_error);
}

TEST(ArrivalStream, ValidatesConfiguration) {
  ArrivalProcess process;
  process.kind = ArrivalProcess::Kind::kPoisson;
  process.rate_per_s = 1.0;
  EXPECT_THROW(ArrivalStream(process, {}, 1), std::invalid_argument);
  EXPECT_THROW(ArrivalStream(process, {fixed_class("a", 0.0, 1.0)}, 1),
               std::invalid_argument);
  process.rate_per_s = 0.0;
  EXPECT_THROW(ArrivalStream(process, {fixed_class("a", 1.0, 1.0)}, 1),
               std::invalid_argument);
  process.kind = ArrivalProcess::Kind::kDiurnal;
  process.rate_per_s = 1.0;
  process.amplitude = 1.5;
  EXPECT_THROW(ArrivalStream(process, {fixed_class("a", 1.0, 1.0)}, 1),
               std::invalid_argument);
}

TEST(ServiceModel, MeansMatchTheoryForEveryKind) {
  const struct {
    ServiceModel::Kind kind;
    double shape;
  } cases[] = {
      {ServiceModel::Kind::kFixed, 1.0},
      {ServiceModel::Kind::kExponential, 1.0},
      {ServiceModel::Kind::kHyperexponential, 4.0},
      {ServiceModel::Kind::kWeibull, 0.7},
      {ServiceModel::Kind::kPareto, 2.5},
  };
  for (const auto& c : cases) {
    ServiceModel model;
    model.kind = c.kind;
    model.mean_s = 2.0;
    model.shape = c.shape;
    EXPECT_DOUBLE_EQ(model.theoretical_mean(), 2.0);
    sim::Rng rng(31);
    double sum = 0.0;
    constexpr int kDraws = 200000;
    for (int i = 0; i < kDraws; ++i) sum += model.draw(rng);
    EXPECT_NEAR(sum / kDraws, 2.0, 0.1) << to_string(c.kind);
  }
}

TEST(ServiceModel, CapAndFloorBoundEveryDraw) {
  ServiceModel model;
  model.kind = ServiceModel::Kind::kPareto;
  model.mean_s = 1.0;
  model.shape = 1.1;  // wild tail without the cap
  model.cap_s = 5.0;
  sim::Rng rng(8);
  for (int i = 0; i < 50000; ++i) {
    const double d = model.draw(rng);
    EXPECT_LE(d, 5.0);
    EXPECT_GE(d, 1e-4);
  }
}

TEST(MakeArrivalJob, CarriesClassIdentityIntoTheSpec) {
  JobClass cls = fixed_class("analytics", 1.0, 2.0);
  cls.arch = sched::SoftwareArch::kAdaptive;
  cls.processes = 8;
  cls.message_bytes = 4096;
  Arrival arrival{/*at_s=*/1.5, /*job_class=*/0, /*demand_s=*/3.0};
  const sched::JobSpec spec = make_arrival_job(cls, arrival);
  EXPECT_EQ(spec.app, "analytics");
  EXPECT_EQ(spec.arch, sched::SoftwareArch::kAdaptive);
}

}  // namespace
}  // namespace tmc::workload
