#include "workload/batch.h"

#include <gtest/gtest.h>

namespace tmc::workload {
namespace {

TEST(Batch, DefaultsMatchPaperSizes) {
  const auto mm = default_batch(App::kMatMul, sched::SoftwareArch::kFixed);
  EXPECT_EQ(mm.small_size, 60u);
  EXPECT_EQ(mm.large_size, 120u);
  EXPECT_EQ(mm.small_count, 12);
  EXPECT_EQ(mm.large_count, 4);
  const auto st = default_batch(App::kSort, sched::SoftwareArch::kAdaptive);
  EXPECT_EQ(st.small_size, 6000u);
  EXPECT_EQ(st.large_size, 14000u);
  EXPECT_EQ(st.arch, sched::SoftwareArch::kAdaptive);
}

TEST(Batch, TotalIsSixteen) {
  const auto params = default_batch(App::kMatMul, sched::SoftwareArch::kFixed);
  EXPECT_EQ(params.total(), 16);
  const auto specs = make_batch(params, BatchOrder::kInterleaved);
  EXPECT_EQ(specs.size(), 16u);
}

int count_large(const std::vector<sched::JobSpec>& specs) {
  int n = 0;
  for (const auto& spec : specs) n += spec.large ? 1 : 0;
  return n;
}

TEST(Batch, EveryOrderHasTwelveSmallFourLarge) {
  const auto params = default_batch(App::kSort, sched::SoftwareArch::kFixed);
  for (const auto order :
       {BatchOrder::kInterleaved, BatchOrder::kSmallestFirst,
        BatchOrder::kLargestFirst}) {
    const auto specs = make_batch(params, order);
    EXPECT_EQ(count_large(specs), 4) << to_string(order);
    EXPECT_EQ(specs.size(), 16u);
  }
}

TEST(Batch, SmallestFirstPutsLargeAtEnd) {
  const auto specs =
      make_batch(default_batch(App::kMatMul, sched::SoftwareArch::kFixed),
                 BatchOrder::kSmallestFirst);
  for (std::size_t i = 0; i < 12; ++i) EXPECT_FALSE(specs[i].large);
  for (std::size_t i = 12; i < 16; ++i) EXPECT_TRUE(specs[i].large);
}

TEST(Batch, LargestFirstPutsLargeAtFront) {
  const auto specs =
      make_batch(default_batch(App::kMatMul, sched::SoftwareArch::kFixed),
                 BatchOrder::kLargestFirst);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_TRUE(specs[i].large);
  for (std::size_t i = 4; i < 16; ++i) EXPECT_FALSE(specs[i].large);
}

TEST(Batch, InterleavedSpreadsLargeEvenly) {
  const auto specs =
      make_batch(default_batch(App::kMatMul, sched::SoftwareArch::kFixed),
                 BatchOrder::kInterleaved);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(specs[i].large, i % 4 == 3) << "position " << i;
  }
}

TEST(Batch, SpecsCarryProblemSizes) {
  const auto specs =
      make_batch(default_batch(App::kSort, sched::SoftwareArch::kFixed),
                 BatchOrder::kSmallestFirst);
  EXPECT_EQ(specs.front().problem_size, 6000u);
  EXPECT_EQ(specs.back().problem_size, 14000u);
  EXPECT_LT(specs.front().demand_estimate, specs.back().demand_estimate);
}

TEST(Batch, CustomCountsRespected) {
  auto params = default_batch(App::kMatMul, sched::SoftwareArch::kFixed);
  params.small_count = 3;
  params.large_count = 2;
  const auto specs = make_batch(params, BatchOrder::kInterleaved);
  EXPECT_EQ(specs.size(), 5u);
  EXPECT_EQ(count_large(specs), 2);
}

TEST(Batch, UnsetSizesThrow) {
  BatchParams params;
  params.small_size = 0;
  EXPECT_THROW(make_batch(params, BatchOrder::kInterleaved),
               std::invalid_argument);
}

TEST(Batch, BuildersProduceRunnablePrograms) {
  const auto specs =
      make_batch(default_batch(App::kMatMul, sched::SoftwareArch::kFixed),
                 BatchOrder::kInterleaved);
  // Builders must be callable and consistent with the fixed architecture.
  sched::Job job(1, specs[0]);
  const auto programs = job.spec().builder(job, 8);
  EXPECT_EQ(programs.size(), 16u);
}

}  // namespace
}  // namespace tmc::workload
