#include "workload/matmul.h"

#include <gtest/gtest.h>

#include <variant>

namespace tmc::workload {
namespace {

using node::AllocOp;
using node::ComputeOp;
using node::ExitOp;
using node::Program;
using node::ReceiveOp;
using node::SendOp;
using sim::SimTime;

MatMulParams params(std::size_t n, sched::SoftwareArch arch) {
  MatMulParams p;
  p.n = n;
  p.arch = arch;
  return p;
}

TEST(MatMul, FixedArchIgnoresPartitionSize) {
  const auto progs =
      build_matmul_programs(params(50, sched::SoftwareArch::kFixed), 1, 4);
  EXPECT_EQ(progs.size(), 16u);
}

TEST(MatMul, AdaptiveArchMatchesPartitionSize) {
  const auto progs =
      build_matmul_programs(params(50, sched::SoftwareArch::kAdaptive), 1, 4);
  EXPECT_EQ(progs.size(), 4u);
}

TEST(MatMul, SingleProcessDegeneratesToSerial) {
  const auto progs =
      build_matmul_programs(params(50, sched::SoftwareArch::kAdaptive), 1, 1);
  ASSERT_EQ(progs.size(), 1u);
  // alloc, compute, exit -- no communication.
  EXPECT_EQ(progs[0].total_send_bytes(), 0u);
  EXPECT_EQ(progs[0].total_compute(), matmul_serial_demand(params(50, {})));
}

TEST(MatMul, TotalComputeEqualsSerialDemand) {
  for (int partition : {1, 2, 4, 8, 16}) {
    const auto progs = build_matmul_programs(
        params(100, sched::SoftwareArch::kAdaptive), 1, partition);
    SimTime total;
    for (const auto& prog : progs) total += prog.total_compute();
    EXPECT_EQ(total, matmul_serial_demand(params(100, {})))
        << "partition " << partition;
  }
}

TEST(MatMul, WorkDistributionIsBalanced) {
  const auto progs =
      build_matmul_programs(params(100, sched::SoftwareArch::kFixed), 1, 16);
  SimTime min_compute = SimTime::max(), max_compute;
  for (const auto& prog : progs) {
    min_compute = std::min(min_compute, prog.total_compute());
    max_compute = std::max(max_compute, prog.total_compute());
  }
  // 100 rows over 16 ranks: 6 or 7 rows each.
  EXPECT_LT(max_compute.to_seconds() / min_compute.to_seconds(), 7.0 / 6.0 + 0.01);
}

TEST(MatMul, CoordinatorStructure) {
  const auto progs =
      build_matmul_programs(params(50, sched::SoftwareArch::kFixed), 7, 16);
  const Program& coord = progs[0];
  // alloc, 15 sends, compute, 15 recvs, exit.
  ASSERT_EQ(coord.size(), 1u + 15u + 1u + 15u + 1u);
  EXPECT_TRUE(std::holds_alternative<AllocOp>(coord.ops.front()));
  EXPECT_TRUE(std::holds_alternative<ExitOp>(coord.ops.back()));
  int sends = 0, recvs = 0;
  for (const auto& op : coord.ops) {
    sends += std::holds_alternative<SendOp>(op) ? 1 : 0;
    recvs += std::holds_alternative<ReceiveOp>(op) ? 1 : 0;
  }
  EXPECT_EQ(sends, 15);
  EXPECT_EQ(recvs, 15);
}

TEST(MatMul, WorkerStructure) {
  const auto progs =
      build_matmul_programs(params(50, sched::SoftwareArch::kFixed), 7, 16);
  for (std::size_t rank = 1; rank < progs.size(); ++rank) {
    const Program& w = progs[rank];
    ASSERT_EQ(w.size(), 5u) << "rank " << rank;
    EXPECT_TRUE(std::holds_alternative<AllocOp>(w.ops[0]));
    EXPECT_TRUE(std::holds_alternative<ReceiveOp>(w.ops[1]));
    EXPECT_TRUE(std::holds_alternative<ComputeOp>(w.ops[2]));
    EXPECT_TRUE(std::holds_alternative<SendOp>(w.ops[3]));
    EXPECT_TRUE(std::holds_alternative<ExitOp>(w.ops[4]));
    // The result goes back to the coordinator's endpoint.
    EXPECT_EQ(std::get<SendOp>(w.ops[3]).dst, sched::endpoint_of(7, 0));
  }
}

TEST(MatMul, BytesSentMatchBytesReceived) {
  const auto progs =
      build_matmul_programs(params(100, sched::SoftwareArch::kFixed), 1, 16);
  // Every worker receives B + its band of A; the coordinator sends exactly
  // that. Count conservation: total sends by coordinator == sum of worker
  // parcel sizes, and worker results land at the coordinator.
  const std::size_t esz = MatMulParams{}.costs.element_bytes;
  std::size_t coord_sent = progs[0].total_send_bytes();
  std::size_t workers_sent = 0;
  for (std::size_t rank = 1; rank < progs.size(); ++rank) {
    workers_sent += progs[rank].total_send_bytes();
  }
  // Workers return the full C matrix minus the coordinator's band.
  const std::size_t coord_rows = 100 / 16 + 1;  // rank 0 gets a remainder row
  EXPECT_EQ(workers_sent, (100 - coord_rows) * 100 * esz);
  // Coordinator ships 15 copies of B plus all A bands except its own.
  EXPECT_EQ(coord_sent, 15 * 100 * 100 * esz + (100 - coord_rows) * 100 * esz);
}

TEST(MatMul, DemandScalesCubically) {
  const auto small = matmul_serial_demand(params(50, {}));
  const auto large = matmul_serial_demand(params(100, {}));
  EXPECT_EQ(large.ns(), 8 * small.ns());
}

TEST(MatMul, JobSpecCarriesMetadata) {
  const auto spec = make_matmul_job(params(100, sched::SoftwareArch::kAdaptive),
                                    /*large=*/true);
  EXPECT_EQ(spec.app, "matmul");
  EXPECT_EQ(spec.problem_size, 100u);
  EXPECT_TRUE(spec.large);
  EXPECT_EQ(spec.arch, sched::SoftwareArch::kAdaptive);
  EXPECT_EQ(spec.demand_estimate, matmul_serial_demand(params(100, {})));
}

}  // namespace
}  // namespace tmc::workload
