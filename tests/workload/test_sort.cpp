#include "workload/sort.h"

#include <gtest/gtest.h>

#include <variant>

namespace tmc::workload {
namespace {

using node::Program;
using node::ReceiveOp;
using node::SendOp;
using sim::SimTime;

SortParams params(std::size_t elements, sched::SoftwareArch arch) {
  SortParams p;
  p.elements = elements;
  p.arch = arch;
  return p;
}

TEST(Sort, FixedArchBuildsSixteenProcesses) {
  const auto progs =
      build_sort_programs(params(6000, sched::SoftwareArch::kFixed), 1, 4);
  EXPECT_EQ(progs.size(), 16u);
}

TEST(Sort, AdaptiveArchRoundsToPowerOfTwo) {
  EXPECT_EQ(build_sort_programs(params(6000, sched::SoftwareArch::kAdaptive),
                                1, 8)
                .size(),
            8u);
  // Non-power-of-two partitions round down.
  EXPECT_EQ(build_sort_programs(params(6000, sched::SoftwareArch::kAdaptive),
                                1, 6)
                .size(),
            4u);
}

TEST(Sort, SingleProcessSortsEverythingSerially) {
  const auto progs =
      build_sort_programs(params(1000, sched::SoftwareArch::kAdaptive), 1, 1);
  ASSERT_EQ(progs.size(), 1u);
  EXPECT_EQ(progs[0].total_send_bytes(), 0u);
  EXPECT_EQ(progs[0].total_compute(), sort_serial_demand(params(1000, {})));
}

TEST(Sort, EveryNonRootReceivesWorkExactlyOnce) {
  const auto progs =
      build_sort_programs(params(6000, sched::SoftwareArch::kFixed), 3, 16);
  for (std::size_t rank = 1; rank < progs.size(); ++rank) {
    int work_recvs = 0;
    for (const auto& op : progs[rank].ops) {
      if (const auto* recv = std::get_if<ReceiveOp>(&op)) {
        if (recv->tag == 1000 + static_cast<int>(rank)) ++work_recvs;
      }
    }
    EXPECT_EQ(work_recvs, 1) << "rank " << rank;
  }
}

TEST(Sort, EveryNonRootReturnsResultToItsParent) {
  const auto progs =
      build_sort_programs(params(6000, sched::SoftwareArch::kFixed), 3, 16);
  // The last send of each non-root rank is its sorted segment, addressed to
  // the parent that spawned it; the root never sends results.
  EXPECT_EQ(progs[0].total_send_bytes(),
            progs[0].total_send_bytes());  // root sends only work parcels
  for (std::size_t rank = 1; rank < progs.size(); ++rank) {
    const SendOp* last_send = nullptr;
    for (const auto& op : progs[rank].ops) {
      if (const auto* send = std::get_if<SendOp>(&op)) last_send = send;
    }
    ASSERT_NE(last_send, nullptr) << "rank " << rank;
    EXPECT_EQ(last_send->tag, 2000 + static_cast<int>(rank));
  }
}

TEST(Sort, SegmentsPartitionTheArray) {
  // The bytes sent down the tree at each level halve the segments; what
  // every leaf sorts must sum to the whole array. We verify via conservation:
  // total result bytes returned to the root's merge chain equals the shipped
  // bytes (every shipped element comes back sorted).
  const auto p = params(6000, sched::SoftwareArch::kFixed);
  const auto progs = build_sort_programs(p, 3, 16);
  const std::size_t esz = p.costs.element_bytes;
  std::size_t work_bytes = 0, result_bytes = 0;
  for (const auto& prog : progs) {
    for (const auto& op : prog.ops) {
      if (const auto* send = std::get_if<SendOp>(&op)) {
        (send->tag < 2000 ? work_bytes : result_bytes) += send->bytes;
      }
    }
  }
  EXPECT_EQ(work_bytes, result_bytes);
  EXPECT_GT(work_bytes / esz, 0u);
}

TEST(Sort, TotalComputeShrinksWithMoreProcesses) {
  // Selection sort is O(n^2): 16 chunks of n/16 cost ~1/16 of one chunk of
  // n -- the effect behind the paper's section 5.3.
  const auto serial =
      build_sort_programs(params(6400, sched::SoftwareArch::kAdaptive), 1, 1);
  const auto wide =
      build_sort_programs(params(6400, sched::SoftwareArch::kAdaptive), 1, 16);
  SimTime serial_total, wide_total;
  for (const auto& prog : serial) serial_total += prog.total_compute();
  for (const auto& prog : wide) wide_total += prog.total_compute();
  EXPECT_LT(wide_total.to_seconds(), serial_total.to_seconds() / 8.0);
}

TEST(Sort, DemandScalesQuadratically) {
  const auto small = sort_serial_demand(params(6000, {}));
  const auto large = sort_serial_demand(params(12000, {}));
  const double ratio =
      static_cast<double>(large.ns()) / static_cast<double>(small.ns());
  EXPECT_NEAR(ratio, 4.0, 0.01);
}

TEST(Sort, RootStructureBeginsWithAllocEndsWithExit) {
  const auto progs =
      build_sort_programs(params(6000, sched::SoftwareArch::kFixed), 1, 16);
  for (const auto& prog : progs) {
    EXPECT_TRUE(std::holds_alternative<node::AllocOp>(prog.ops.front()));
    EXPECT_TRUE(std::holds_alternative<node::ExitOp>(prog.ops.back()));
  }
}

TEST(Sort, RootMergesOncePerLevel) {
  const auto progs =
      build_sort_programs(params(6000, sched::SoftwareArch::kFixed), 1, 16);
  int root_recvs = 0;
  for (const auto& op : progs[0].ops) {
    root_recvs += std::holds_alternative<ReceiveOp>(op) ? 1 : 0;
  }
  EXPECT_EQ(root_recvs, 4);  // log2(16) children over the levels
}

TEST(Sort, JobSpecCarriesMetadata) {
  const auto spec =
      make_sort_job(params(14000, sched::SoftwareArch::kFixed), true);
  EXPECT_EQ(spec.app, "sort");
  EXPECT_EQ(spec.problem_size, 14000u);
  EXPECT_TRUE(spec.large);
}

}  // namespace
}  // namespace tmc::workload
