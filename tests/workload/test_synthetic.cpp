#include "workload/synthetic.h"

#include <gtest/gtest.h>

#include <cmath>

namespace tmc::workload {
namespace {

using sim::SimTime;

TEST(Synthetic, JobHasForkJoinShape) {
  SyntheticParams params;
  params.fixed_processes = 8;
  const auto spec = make_synthetic_job(params, SimTime::seconds(8));
  sched::Job job(1, spec);
  const auto programs = spec.builder(job, 4);
  ASSERT_EQ(programs.size(), 8u);  // fixed arch
  // Demand split evenly across ranks.
  for (const auto& prog : programs) {
    EXPECT_EQ(prog.total_compute(), SimTime::seconds(1));
  }
}

TEST(Synthetic, AdaptiveWidthFollowsPartition) {
  SyntheticParams params;
  params.arch = sched::SoftwareArch::kAdaptive;
  const auto spec = make_synthetic_job(params, SimTime::seconds(4));
  sched::Job job(1, spec);
  EXPECT_EQ(spec.builder(job, 2).size(), 2u);
  EXPECT_EQ(spec.builder(job, 16).size(), 16u);
}

TEST(Synthetic, DemandEstimateEqualsDrawnDemand) {
  SyntheticParams params;
  const auto spec = make_synthetic_job(params, SimTime::seconds(7));
  EXPECT_EQ(spec.demand_estimate, SimTime::seconds(7));
}

TEST(Synthetic, BatchMeanTracksConfiguredMean) {
  SyntheticParams params;
  params.mean_demand = SimTime::seconds(4);
  params.cv = 2.0;
  sim::Rng rng(99);
  const auto specs = make_synthetic_batch(params, 4000, rng);
  double sum = 0;
  for (const auto& spec : specs) sum += spec.demand_estimate.to_seconds();
  EXPECT_NEAR(sum / 4000.0, 4.0, 0.3);
}

TEST(Synthetic, BatchCvTracksConfiguredCv) {
  SyntheticParams params;
  params.mean_demand = SimTime::seconds(4);
  params.cv = 3.0;
  sim::Rng rng(7);
  const auto specs = make_synthetic_batch(params, 20000, rng);
  double sum = 0, sq = 0;
  for (const auto& spec : specs) {
    const double d = spec.demand_estimate.to_seconds();
    sum += d;
    sq += d * d;
  }
  const double mean = sum / 20000.0;
  const double var = sq / 20000.0 - mean * mean;
  EXPECT_NEAR(std::sqrt(var) / mean, 3.0, 0.3);
}

TEST(Synthetic, ZeroCvIsDeterministic) {
  SyntheticParams params;
  params.mean_demand = SimTime::seconds(2);
  params.cv = 0.0;
  sim::Rng rng(1);
  const auto specs = make_synthetic_batch(params, 10, rng);
  for (const auto& spec : specs) {
    EXPECT_EQ(spec.demand_estimate, SimTime::seconds(2));
  }
}

TEST(Synthetic, LowCvUsesTwoPointMix) {
  SyntheticParams params;
  params.mean_demand = SimTime::seconds(2);
  params.cv = 0.5;
  sim::Rng rng(1);
  const auto specs = make_synthetic_batch(params, 1000, rng);
  for (const auto& spec : specs) {
    const double d = spec.demand_estimate.to_seconds();
    EXPECT_TRUE(std::abs(d - 1.0) < 1e-9 || std::abs(d - 3.0) < 1e-9)
        << d;
  }
}

TEST(Synthetic, DeterministicGivenSeed) {
  SyntheticParams params;
  params.cv = 2.0;
  sim::Rng a(5), b(5);
  const auto sa = make_synthetic_batch(params, 50, a);
  const auto sb = make_synthetic_batch(params, 50, b);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(sa[i].demand_estimate, sb[i].demand_estimate);
  }
}

TEST(Synthetic, LargeFlagMarksAboveMeanJobs) {
  SyntheticParams params;
  params.mean_demand = SimTime::seconds(4);
  const auto big = make_synthetic_job(params, SimTime::seconds(10));
  const auto small = make_synthetic_job(params, SimTime::seconds(1));
  EXPECT_TRUE(big.large);
  EXPECT_FALSE(small.large);
}

}  // namespace
}  // namespace tmc::workload
