#!/usr/bin/env python3
"""Validate tmc observability output files beyond "it parses".

`python -m json.tool` only proves well-formedness; this script checks the
contracts consumers actually rely on:

  metrics JSON  (--metrics=out.json)
      schema tag "tmc-metrics-v1", every instrument named and typed, scalar
      kinds carry a finite value, distributions carry summary stats and a
      histogram whose bin counts sum to the clamped sample count.

  timeline JSON (--timeline=out.json)
      Chrome trace_event object form loadable by Perfetto: process/thread
      metadata first, every event one of M/X/i/C/b/e/s/f with the fields
      that phase requires, spans with non-negative durations, and -- the
      point of the exercise -- per-node tracks plus at least one
      utilization counter. Chunked output (--timeline-chunk) is
      byte-identical to buffered, so the same checker covers both.

  job-tracing timeline (--flows=out.json)
      Everything --timeline checks, plus the per-job causal layer: a
      'jobs' process with per-class tracks, async b/e events that nest as
      a well-formed stack per (pid, tid, id) and all close by end of
      trace, and cross-node flow events where every 's' pairs with
      exactly one 'f' of the same id, never earlier in time. On traces
      with fault instants (a run with --fault-rate > 0), flows whose
      message died mid-flight legitimately never finish; those truncated
      starts are counted and reported instead of failing the check, and
      the fault instants themselves must alternate down/up per resource.

  metrics stream JSONL (--metrics-stream=out.jsonl)
      header line tagged "tmc-metrics-stream-v1" naming every channel, then
      one tick object per line with finite values parallel to the channel
      list and non-decreasing timestamps.

Usage:
    python3 tools/check_obs_json.py --metrics metrics.json \\
                                    --timeline timeline.json \\
                                    --stream metrics.jsonl
Exit 0 if every given file passes; first violation is fatal.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

SCALAR_KINDS = {"counter", "gauge", "probe"}


def fail(path: str, message: str) -> None:
    sys.exit(f"check_obs_json: {path}: {message}")


def require(cond: bool, path: str, message: str) -> None:
    if not cond:
        fail(path, message)


def is_finite_number(x: object) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) \
        and math.isfinite(x)


def check_metrics(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    require(doc.get("schema") == "tmc-metrics-v1", path,
            f"schema tag is {doc.get('schema')!r}, want 'tmc-metrics-v1'")
    require(isinstance(doc.get("label"), str) and doc["label"], path,
            "missing run label")
    require(is_finite_number(doc.get("end_time_s")), path,
            "end_time_s missing or not finite")
    metrics = doc.get("metrics")
    require(isinstance(metrics, list) and metrics, path,
            "metrics array missing or empty")
    seen: set[str] = set()
    for m in metrics:
        name = m.get("name")
        require(isinstance(name, str) and name, path,
                f"instrument without a name: {m}")
        require(name not in seen, path, f"duplicate instrument {name!r}")
        seen.add(name)
        kind = m.get("kind")
        if kind in SCALAR_KINDS:
            require(is_finite_number(m.get("value")), path,
                    f"{name}: {kind} value missing or not finite")
        elif kind == "distribution":
            for field in ("count", "mean", "min", "max", "stddev"):
                require(is_finite_number(m.get(field)), path,
                        f"{name}: distribution field {field} missing")
            histogram = m.get("histogram")
            require(isinstance(histogram, dict), path,
                    f"{name}: distribution without histogram object")
            bins = histogram.get("bins")
            require(isinstance(bins, list) and bins, path,
                    f"{name}: histogram without bins")
            # Out-of-range samples are clamped INTO the edge bins, so the
            # bins always account for every sample.
            require(sum(bins) == m["count"], path,
                    f"{name}: histogram bins sum to {sum(bins)}, "
                    f"count says {m['count']} (clamping leak?)")
            for field in ("lo", "hi", "underflow", "overflow"):
                require(is_finite_number(histogram.get(field)), path,
                        f"{name}: histogram field {field} missing")
        else:
            fail(path, f"{name}: unknown instrument kind {kind!r}")
    print(f"check_obs_json: {path}: {len(metrics)} instruments ok")


def check_timeline(path: str, flows: bool = False) -> None:
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    require(isinstance(events, list) and events, path,
            "traceEvents missing or empty")
    processes: set[str] = set()
    counters: set[str] = set()
    node_threads = 0
    link_threads = 0
    job_threads = 0
    spans = 0
    # Open async nesting stacks keyed by (pid, tid, id); Chrome pairs b/e
    # events the same way, so a malformed stack here renders wrong there.
    async_open: dict[tuple, list[str]] = {}
    async_pairs = 0
    steal_spans = 0
    flow_start_ts: dict[object, tuple[float, str]] = {}
    flow_pairs = 0
    steal_grants = 0
    steal_denies = 0
    fault_instants = 0
    fault_state: dict[tuple, str] = {}
    for e in events:
        ph = e.get("ph")
        require(is_finite_number(e.get("pid")), path, f"event without pid: {e}")
        if ph == "M":
            name = e.get("args", {}).get("name")
            require(isinstance(name, str) and name, path,
                    f"metadata event without args.name: {e}")
            if e.get("name") == "process_name":
                processes.add(name)
            elif e.get("name") == "thread_name":
                if name.startswith("node"):
                    node_threads += 1
                elif name.startswith("link"):
                    link_threads += 1
                elif name.startswith("class:") or name == "jobs":
                    job_threads += 1
        elif ph == "X":
            require(is_finite_number(e.get("ts")), path, f"span without ts: {e}")
            require(is_finite_number(e.get("dur")) and e["dur"] >= 0, path,
                    f"span with bad dur: {e}")
            spans += 1
        elif ph == "C":
            require(is_finite_number(e.get("ts")), path,
                    f"counter without ts: {e}")
            counters.add(e.get("name", ""))
        elif ph == "i":
            require(e.get("s") in ("t", "p", "g"), path,
                    f"instant with bad scope: {e}")
            name = e.get("name", "")
            if name in ("node-down", "node-up", "link-down", "link-up"):
                kind, edge = name.split("-")
                resource = (kind, e.get("args", {}).get("value"))
                fault_instants += 1
                # Each resource strictly alternates down/up, starting with
                # down (everything is alive when the run starts).
                last = fault_state.get(resource, "up")
                require(last != edge, path,
                        f"fault instant {name!r} for {resource} repeats "
                        f"state {edge!r} without the opposite edge between")
                fault_state[resource] = edge
        elif ph in ("b", "e"):
            require(is_finite_number(e.get("ts")), path,
                    f"async event without ts: {e}")
            require(e.get("cat"), path, f"async event without cat: {e}")
            require("id" in e, path, f"async event without id: {e}")
            key = (e["pid"], e.get("tid"), e["id"])
            if ph == "b":
                stack = async_open.setdefault(key, [])
                # The steal overlay is strictly interior to a job group: it
                # opens only while that job's envelope (and a phase span
                # inside it) is already open, so the per-id decomposition
                # stays exact. A top-level "steal" would double-count.
                if e.get("name") == "steal":
                    require("job" in stack and len(stack) >= 2, path,
                            f"'steal' span outside a job envelope + phase "
                            f"(open stack {stack}): {e}")
                    steal_spans += 1
                stack.append(e.get("name", ""))
            else:
                stack = async_open.get(key)
                require(bool(stack), path,
                        f"async end with no matching begin: {e}")
                require(stack[-1] == e.get("name", ""), path,
                        f"async end {e.get('name')!r} does not close "
                        f"innermost open span {stack[-1]!r} (id {e['id']})")
                stack.pop()
                async_pairs += 1
        elif ph in ("s", "f"):
            require(is_finite_number(e.get("ts")), path,
                    f"flow event without ts: {e}")
            require(e.get("cat"), path, f"flow event without cat: {e}")
            require("id" in e, path, f"flow event without id: {e}")
            if ph == "s":
                require(e["id"] not in flow_start_ts, path,
                        f"duplicate flow start id {e['id']}")
                flow_start_ts[e["id"]] = (e["ts"], e.get("name", ""))
            else:
                require(e.get("bp") == "e", path,
                        f"flow finish without bp='e' (arrow would bind to "
                        f"the wrong span): {e}")
                start = flow_start_ts.pop(e["id"], None)
                require(start is not None, path,
                        f"flow finish with no open start (id {e['id']})")
                start_ts, start_name = start
                require(e["ts"] >= start_ts, path,
                        f"flow finish at ts {e['ts']} precedes its start "
                        f"at {start_ts} (id {e['id']})")
                # Steal arrows carry the protocol verdict in their names:
                # every request resolves as exactly one grant or deny, and
                # only requests resolve that way.
                finish_name = e.get("name", "")
                if start_name == "steal-req" \
                        or finish_name in ("steal-grant", "steal-deny"):
                    require(start_name == "steal-req", path,
                            f"flow finish {finish_name!r} closes a "
                            f"non-steal start {start_name!r} (id {e['id']})")
                    require(finish_name in ("steal-grant", "steal-deny"),
                            path,
                            f"steal request resolved by {finish_name!r}, "
                            f"want steal-grant or steal-deny (id {e['id']})")
                    if finish_name == "steal-grant":
                        steal_grants += 1
                    else:
                        steal_denies += 1
                flow_pairs += 1
        else:
            fail(path, f"unknown event phase {ph!r}: {e}")
    require("nodes" in processes, path,
            f"no 'nodes' process track (saw {sorted(processes)})")
    require(node_threads > 0, path, "no per-node thread metadata")
    require(spans > 0, path, "no complete ('X') spans -- CPU tracks empty")
    # Single-node machines legitimately have no links; everyone else must
    # export a per-link utilization series.
    if link_threads > 0:
        require(any("utilization" in c for c in counters), path,
                f"{link_threads} link tracks but no utilization counter "
                f"series (saw {sorted(counters)[:8]}...)")
    leaked = {k: v for k, v in async_open.items() if v}
    require(not leaked, path,
            f"{len(leaked)} async spans still open at end of trace "
            f"(first: {sorted(leaked.items())[:1]})")
    if flows:
        require("jobs" in processes, path,
                f"no 'jobs' process track (saw {sorted(processes)}) -- "
                f"was the run traced with job classes?")
        require(job_threads > 0, path, "no per-job-class thread metadata")
        require(async_pairs > 0, path, "no async job spans (b/e) at all")
        # A message that died mid-flight (dropped, or its destination
        # crashed) opens a flow that can never finish. Only a trace that
        # actually recorded fault episodes may contain such truncations;
        # a reliable run with dangling starts is still a pairing bug.
        if fault_instants == 0:
            require(not flow_start_ts, path,
                    f"{len(flow_start_ts)} flow starts never finished "
                    f"(first ids: {sorted(flow_start_ts)[:4]})")
        require(flow_pairs > 0, path, "no cross-node flow (s/f) pairs")
    # A steal request aimed at a node that died mid-protocol is truncated by
    # faults exactly like an application message's flow; count the two
    # populations separately so the report shows what the protocol lost.
    truncated_steals = sum(1 for _, name in flow_start_ts.values()
                           if name == "steal-req")
    truncated = len(flow_start_ts) - truncated_steals
    steal_note = ""
    if steal_grants or steal_denies or steal_spans:
        steal_note = (f", {steal_grants} steal grants + {steal_denies} "
                      f"denies, {steal_spans} steal spans")
    print(f"check_obs_json: {path}: {len(events)} events, {node_threads} node "
          f"tracks, {link_threads} link tracks, {spans} spans, "
          f"{len(counters)} counter series, {async_pairs} job spans, "
          f"{flow_pairs} flow pairs ok" + steal_note
          + (f", {fault_instants} fault instants" if fault_instants else "")
          + (f", {truncated} flows truncated by faults" if truncated else "")
          + (f", {truncated_steals} steals truncated by faults"
             if truncated_steals else "")
          + (" (flows)" if flows else ""))


def check_stream(path: str) -> None:
    with open(path) as f:
        lines = [line for line in f.read().splitlines() if line]
    require(len(lines) >= 2, path,
            f"want a header line plus at least one tick, got {len(lines)} "
            f"non-empty lines")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(path, f"header line is not JSON: {e}")
    require(header.get("schema") == "tmc-metrics-stream-v1", path,
            f"schema tag is {header.get('schema')!r}, "
            f"want 'tmc-metrics-stream-v1'")
    require(isinstance(header.get("label"), str) and header["label"], path,
            "header missing run label")
    channels = header.get("channels")
    require(isinstance(channels, list) and channels, path,
            "header channels list missing or empty")
    for c in channels:
        require(isinstance(c, str) and c, path,
                f"channel label not a non-empty string: {c!r}")
    last_t = -math.inf
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            tick = json.loads(line)
        except json.JSONDecodeError as e:
            fail(path, f"line {lineno}: not JSON: {e}")
        t = tick.get("t_s")
        require(is_finite_number(t), path,
                f"line {lineno}: t_s missing or not finite")
        require(t >= last_t, path,
                f"line {lineno}: t_s {t} went backwards (previous {last_t})")
        last_t = t
        values = tick.get("v")
        require(isinstance(values, list) and len(values) == len(channels),
                path,
                f"line {lineno}: v has {len(values) if isinstance(values, list) else 'no'} "
                f"entries, want {len(channels)}")
        for v in values:
            require(is_finite_number(v), path,
                    f"line {lineno}: non-finite sample value {v!r}")
    print(f"check_obs_json: {path}: {len(lines) - 1} ticks x "
          f"{len(channels)} channels ok (stream)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--metrics", action="append", default=[],
                        help="tmc-metrics-v1 JSON file (repeatable)")
    parser.add_argument("--timeline", action="append", default=[],
                        help="Chrome trace_event JSON file (repeatable)")
    parser.add_argument("--flows", action="append", default=[],
                        help="trace_event JSON with the per-job layer: also "
                             "require job-class tracks, async span pairing "
                             "and matched s/f flow events (repeatable)")
    parser.add_argument("--stream", action="append", default=[],
                        help="tmc-metrics-stream-v1 JSONL file (repeatable)")
    args = parser.parse_args()
    if not args.metrics and not args.timeline and not args.flows \
            and not args.stream:
        parser.error("nothing to check: pass --metrics, --timeline, "
                     "--flows, and/or --stream")
    for path in args.metrics:
        check_metrics(path)
    for path in args.timeline:
        check_timeline(path)
    for path in args.flows:
        check_timeline(path, flows=True)
    for path in args.stream:
        check_stream(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
