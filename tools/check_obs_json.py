#!/usr/bin/env python3
"""Validate tmc observability output files beyond "it parses".

`python -m json.tool` only proves well-formedness; this script checks the
contracts consumers actually rely on:

  metrics JSON  (--metrics=out.json)
      schema tag "tmc-metrics-v1", every instrument named and typed, scalar
      kinds carry a finite value, distributions carry summary stats and a
      histogram whose bin counts sum to the clamped sample count.

  timeline JSON (--timeline=out.json)
      Chrome trace_event object form loadable by Perfetto: process/thread
      metadata first, every event one of M/X/i/C with the fields that phase
      requires, spans with non-negative durations, and -- the point of the
      exercise -- per-node tracks plus at least one utilization counter.
      Chunked output (--timeline-chunk) is byte-identical to buffered, so
      the same checker covers both.

  metrics stream JSONL (--metrics-stream=out.jsonl)
      header line tagged "tmc-metrics-stream-v1" naming every channel, then
      one tick object per line with finite values parallel to the channel
      list and non-decreasing timestamps.

Usage:
    python3 tools/check_obs_json.py --metrics metrics.json \\
                                    --timeline timeline.json \\
                                    --stream metrics.jsonl
Exit 0 if every given file passes; first violation is fatal.
"""

from __future__ import annotations

import argparse
import json
import math
import sys

SCALAR_KINDS = {"counter", "gauge", "probe"}


def fail(path: str, message: str) -> None:
    sys.exit(f"check_obs_json: {path}: {message}")


def require(cond: bool, path: str, message: str) -> None:
    if not cond:
        fail(path, message)


def is_finite_number(x: object) -> bool:
    return isinstance(x, (int, float)) and not isinstance(x, bool) \
        and math.isfinite(x)


def check_metrics(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    require(doc.get("schema") == "tmc-metrics-v1", path,
            f"schema tag is {doc.get('schema')!r}, want 'tmc-metrics-v1'")
    require(isinstance(doc.get("label"), str) and doc["label"], path,
            "missing run label")
    require(is_finite_number(doc.get("end_time_s")), path,
            "end_time_s missing or not finite")
    metrics = doc.get("metrics")
    require(isinstance(metrics, list) and metrics, path,
            "metrics array missing or empty")
    seen: set[str] = set()
    for m in metrics:
        name = m.get("name")
        require(isinstance(name, str) and name, path,
                f"instrument without a name: {m}")
        require(name not in seen, path, f"duplicate instrument {name!r}")
        seen.add(name)
        kind = m.get("kind")
        if kind in SCALAR_KINDS:
            require(is_finite_number(m.get("value")), path,
                    f"{name}: {kind} value missing or not finite")
        elif kind == "distribution":
            for field in ("count", "mean", "min", "max", "stddev"):
                require(is_finite_number(m.get(field)), path,
                        f"{name}: distribution field {field} missing")
            histogram = m.get("histogram")
            require(isinstance(histogram, dict), path,
                    f"{name}: distribution without histogram object")
            bins = histogram.get("bins")
            require(isinstance(bins, list) and bins, path,
                    f"{name}: histogram without bins")
            # Out-of-range samples are clamped INTO the edge bins, so the
            # bins always account for every sample.
            require(sum(bins) == m["count"], path,
                    f"{name}: histogram bins sum to {sum(bins)}, "
                    f"count says {m['count']} (clamping leak?)")
            for field in ("lo", "hi", "underflow", "overflow"):
                require(is_finite_number(histogram.get(field)), path,
                        f"{name}: histogram field {field} missing")
        else:
            fail(path, f"{name}: unknown instrument kind {kind!r}")
    print(f"check_obs_json: {path}: {len(metrics)} instruments ok")


def check_timeline(path: str) -> None:
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    require(isinstance(events, list) and events, path,
            "traceEvents missing or empty")
    processes: set[str] = set()
    counters: set[str] = set()
    node_threads = 0
    link_threads = 0
    spans = 0
    for e in events:
        ph = e.get("ph")
        require(is_finite_number(e.get("pid")), path, f"event without pid: {e}")
        if ph == "M":
            name = e.get("args", {}).get("name")
            require(isinstance(name, str) and name, path,
                    f"metadata event without args.name: {e}")
            if e.get("name") == "process_name":
                processes.add(name)
            elif e.get("name") == "thread_name":
                if name.startswith("node"):
                    node_threads += 1
                elif name.startswith("link"):
                    link_threads += 1
        elif ph == "X":
            require(is_finite_number(e.get("ts")), path, f"span without ts: {e}")
            require(is_finite_number(e.get("dur")) and e["dur"] >= 0, path,
                    f"span with bad dur: {e}")
            spans += 1
        elif ph == "C":
            require(is_finite_number(e.get("ts")), path,
                    f"counter without ts: {e}")
            counters.add(e.get("name", ""))
        elif ph == "i":
            require(e.get("s") in ("t", "p", "g"), path,
                    f"instant with bad scope: {e}")
        else:
            fail(path, f"unknown event phase {ph!r}: {e}")
    require("nodes" in processes, path,
            f"no 'nodes' process track (saw {sorted(processes)})")
    require(node_threads > 0, path, "no per-node thread metadata")
    require(spans > 0, path, "no complete ('X') spans -- CPU tracks empty")
    # Single-node machines legitimately have no links; everyone else must
    # export a per-link utilization series.
    if link_threads > 0:
        require(any("utilization" in c for c in counters), path,
                f"{link_threads} link tracks but no utilization counter "
                f"series (saw {sorted(counters)[:8]}...)")
    print(f"check_obs_json: {path}: {len(events)} events, {node_threads} node "
          f"tracks, {link_threads} link tracks, {spans} spans, "
          f"{len(counters)} counter series ok")


def check_stream(path: str) -> None:
    with open(path) as f:
        lines = [line for line in f.read().splitlines() if line]
    require(len(lines) >= 2, path,
            f"want a header line plus at least one tick, got {len(lines)} "
            f"non-empty lines")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as e:
        fail(path, f"header line is not JSON: {e}")
    require(header.get("schema") == "tmc-metrics-stream-v1", path,
            f"schema tag is {header.get('schema')!r}, "
            f"want 'tmc-metrics-stream-v1'")
    require(isinstance(header.get("label"), str) and header["label"], path,
            "header missing run label")
    channels = header.get("channels")
    require(isinstance(channels, list) and channels, path,
            "header channels list missing or empty")
    for c in channels:
        require(isinstance(c, str) and c, path,
                f"channel label not a non-empty string: {c!r}")
    last_t = -math.inf
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            tick = json.loads(line)
        except json.JSONDecodeError as e:
            fail(path, f"line {lineno}: not JSON: {e}")
        t = tick.get("t_s")
        require(is_finite_number(t), path,
                f"line {lineno}: t_s missing or not finite")
        require(t >= last_t, path,
                f"line {lineno}: t_s {t} went backwards (previous {last_t})")
        last_t = t
        values = tick.get("v")
        require(isinstance(values, list) and len(values) == len(channels),
                path,
                f"line {lineno}: v has {len(values) if isinstance(values, list) else 'no'} "
                f"entries, want {len(channels)}")
        for v in values:
            require(is_finite_number(v), path,
                    f"line {lineno}: non-finite sample value {v!r}")
    print(f"check_obs_json: {path}: {len(lines) - 1} ticks x "
          f"{len(channels)} channels ok (stream)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--metrics", action="append", default=[],
                        help="tmc-metrics-v1 JSON file (repeatable)")
    parser.add_argument("--timeline", action="append", default=[],
                        help="Chrome trace_event JSON file (repeatable)")
    parser.add_argument("--stream", action="append", default=[],
                        help="tmc-metrics-stream-v1 JSONL file (repeatable)")
    args = parser.parse_args()
    if not args.metrics and not args.timeline and not args.stream:
        parser.error(
            "nothing to check: pass --metrics, --timeline, and/or --stream")
    for path in args.metrics:
        check_metrics(path)
    for path in args.timeline:
        check_timeline(path)
    for path in args.stream:
        check_stream(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
