#!/usr/bin/env python3
"""Fold a tmc job-traced timeline into a per-class response breakdown.

The per-job layer (serve_sustained --timeline with job tracing on) emits one
async span group per job on its class track: a "job" envelope spanning
arrival to completion, with "wait" (arrival to admission), "dispatch"
(admission to first run), "run" (each scheduled turn) and "rotation" (gaps
while descheduled by the gang rotation) nested inside it. This script pairs
those b/e events back into intervals, groups them into job instances
(recycled ids open temporally disjoint groups on the same track), and prints
the per-class decomposition of mean response time:

    response = wait + dispatch + service (sum of runs) + rotation

The identity is checked per job against the "job" envelope duration; any
residual beyond float-parsing noise means the tracer dropped or misfiled a
phase, and the script exits 1. That makes the table trustworthy: every
column is accounted-for simulated time, not a best-effort estimate.

Usage:
    python3 tools/obs_report.py timeline.json [--out report.txt]

Exit 0 and a stable, golden-diffable table on success.
"""

from __future__ import annotations

import argparse
import json
import sys

# Phase names the job tracer emits inside each "job" envelope, in the order
# the columns are printed. "run" is reported as "service". "retry" only
# appears on fault-injected runs (time between a fault abort and the job's
# restart or final failure); its column is emitted only when some job
# actually spent time there, so fault-free reports are unchanged.
PHASES = ("wait", "dispatch", "run", "rotation", "retry")
COLUMNS = ("wait", "dispatch", "service", "rotation", "retry")

# Overlay spans nest inside the phases above but are *not* part of the
# response decomposition (their time is already counted by the enclosing
# phase). "steal" is open while any thief is mid-protocol against the job;
# its column appears after the phases only when some job actually stole.
OVERLAYS = ("steal",)

# Timestamps are microseconds with exact sub-us decimals; parsing them into
# doubles loses at most ~1 ulp per value. A microsecond of slack per job is
# orders of magnitude above that noise and far below any real phase.
RECONCILE_TOL_US = 1.0


def fail(message: str) -> None:
    sys.exit(f"obs_report: {message}")


class JobInstance:
    """One job's envelope plus its accumulated per-phase time (us)."""

    __slots__ = ("start", "phase_us")

    def __init__(self, start: float) -> None:
        self.start = start
        self.phase_us = dict.fromkeys(PHASES + OVERLAYS, 0.0)


def load_jobs(path: str):
    """Returns {class_name: [(response_us, {phase: us}), ...]}."""
    with open(path) as f:
        doc = json.load(f)
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents missing or empty")

    # The jobs process id comes from metadata, not a hardcoded constant, so
    # the report keeps working if track kinds are ever renumbered.
    jobs_pid = None
    class_of_tid: dict[object, str] = {}
    for e in events:
        if e.get("ph") != "M":
            continue
        if e.get("name") == "process_name" \
                and e.get("args", {}).get("name") == "jobs":
            jobs_pid = e.get("pid")
    if jobs_pid is None:
        fail(f"{path}: no 'jobs' process -- run with --timeline and a "
             f"job-classed workload")
    for e in events:
        if e.get("ph") == "M" and e.get("name") == "thread_name" \
                and e.get("pid") == jobs_pid:
            name = e.get("args", {}).get("name", "")
            class_of_tid[e.get("tid")] = name.removeprefix("class:")

    # Pair b/e events into intervals per (tid, id). Events appear in
    # emission order, so a per-key stack reconstructs the nesting exactly;
    # a closing "job" finalizes the current instance on that key (recycled
    # ids then open a fresh one).
    per_class: dict[str, list] = {c: [] for c in class_of_tid.values()}
    open_spans: dict[tuple, list] = {}
    current: dict[tuple, JobInstance] = {}
    for e in events:
        ph = e.get("ph")
        if ph not in ("b", "e") or e.get("pid") != jobs_pid:
            continue
        key = (e.get("tid"), e.get("id"))
        name = e.get("name", "")
        if ph == "b":
            if name == "job":
                if key in current:
                    fail(f"{path}: nested 'job' envelope on track/id {key}")
                current[key] = JobInstance(e["ts"])
            open_spans.setdefault(key, []).append((name, e["ts"]))
        else:
            stack = open_spans.get(key)
            if not stack or stack[-1][0] != name:
                fail(f"{path}: async end {name!r} without matching begin "
                     f"on track/id {key}")
            _, start = stack.pop()
            inst = current.get(key)
            if inst is None:
                fail(f"{path}: phase {name!r} outside a 'job' envelope "
                     f"on track/id {key}")
            if name == "job":
                response_us = e["ts"] - inst.start
                # Overlays ("steal") ride inside the phases; summing them
                # too would double-count, so the identity is phases-only.
                total = sum(inst.phase_us[p] for p in PHASES)
                if abs(total - response_us) > RECONCILE_TOL_US:
                    fail(f"{path}: job on track/id {key} does not "
                         f"reconcile: phases sum to {total:.3f} us, "
                         f"envelope is {response_us:.3f} us")
                cls = class_of_tid.get(key[0], "?")
                per_class.setdefault(cls, []).append(
                    (response_us, inst.phase_us))
                del current[key]
            elif name in PHASES or name in OVERLAYS:
                inst.phase_us[name] += e["ts"] - start
            else:
                fail(f"{path}: unknown job phase {name!r}")
    leaked = [k for k, v in open_spans.items() if v]
    if leaked:
        fail(f"{path}: {len(leaked)} spans still open at end of trace "
             f"(first: {sorted(leaked)[:1]})")
    return per_class


def render(per_class) -> str:
    any_retry = any(j[1]["retry"] > 0.0
                    for jobs in per_class.values() for j in jobs)
    any_steal = any(j[1]["steal"] > 0.0
                    for jobs in per_class.values() for j in jobs)
    phases = PHASES if any_retry else PHASES[:-1]
    columns = COLUMNS if any_retry else COLUMNS[:-1]
    if any_steal:
        phases = (*phases, "steal")
        columns = (*columns, "steal")
    headers = ["class", "jobs", *[f"{c} (ms)" for c in columns],
               "response (ms)"]
    rows = [headers]
    for cls in sorted(per_class):
        jobs = per_class[cls]
        if not jobs:
            continue
        n = len(jobs)
        means = [sum(j[1][p] for j in jobs) / n / 1e3 for p in phases]
        response = sum(j[0] for j in jobs) / n / 1e3
        rows.append([cls, str(n), *[f"{m:.3f}" for m in means],
                     f"{response:.3f}"])
    if len(rows) == 1:
        fail("no completed jobs in trace")
    widths = [max(len(r[i]) for r in rows) for i in range(len(headers))]
    decomposition = " + ".join(c for c in columns if c not in OVERLAYS)
    overlay_note = "; steal overlays service" if any_steal else ""
    out = ["obs_report: per-class mean response decomposition "
           f"({decomposition} = response{overlay_note})", ""]
    for r in rows:
        out.append("  ".join(
            c.ljust(w) if i == 0 else c.rjust(w)
            for i, (c, w) in enumerate(zip(r, widths))).rstrip())
    total = sum(len(v) for v in per_class.values())
    out.append("")
    out.append(f"{total} jobs reconciled within {RECONCILE_TOL_US:g} us")
    return "\n".join(out) + "\n"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("timeline", help="Chrome trace_event JSON with the "
                                         "per-job tracing layer")
    parser.add_argument("--out", help="write the table here instead of "
                                      "stdout")
    args = parser.parse_args()
    table = render(load_jobs(args.timeline))
    if args.out:
        with open(args.out, "w") as f:
            f.write(table)
    else:
        sys.stdout.write(table)
    return 0


if __name__ == "__main__":
    sys.exit(main())
