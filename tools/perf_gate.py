#!/usr/bin/env python3
"""CI perf gate: fail when kernel throughput regresses against the record.

Compares a fresh Google Benchmark JSON report against the most recent entry
in BENCH_kernel.json (the repo's performance trajectory) and exits non-zero
if any benchmark's items_per_second fell more than --tolerance (default 10%)
below the recorded value.

Usage:
    ./build/bench/micro_kernel   --benchmark_format=json > kernel.json
    ./build/bench/micro_wormhole --benchmark_format=json > wormhole.json
    python3 tools/perf_gate.py kernel.json wormhole.json

Rules of engagement:
  - Only benchmarks present in BOTH the report and the latest BENCH entry
    are gated; new benchmarks are reported as informational and should be
    added to BENCH_kernel.json in the PR that introduces them.
  - Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    gated on the median when present, otherwise on the plain run.
  - A benchmark appearing in several report files is gated on its fastest
    observation: single-shot benches (fig_scaling, serve_sustained) can be
    run twice on a noisy 1-core runner and gated best-of-N.
  - Speedups are never an error: the gate only bounds regressions. When the
    numbers move up for good, refresh BENCH_kernel.json with a new entry
    rather than letting headroom accumulate.

Pair gates compare two benchmarks WITHIN the same reports instead of against
the historical record -- immune to runner noise because both sides ran on
the same machine moments apart. Used to pin the cost of the disabled
observability hooks:

    python3 tools/perf_gate.py kernel.json \\
      --pair "BM_SimulationEventChainNullObs/10000=BM_SimulationEventChain/10000" \\
      --pair-tolerance 0.03

fails if the instrumented-but-disabled side falls more than --pair-tolerance
below its baseline side.

The scaling study (bench/fig_scaling) emits the same JSON shape with
items_per_second = simulator events/sec, so it is gated with the same
machinery against its own record:

    ./build/bench/fig_scaling --sizes 64,256 --json scaling.json
    python3 tools/perf_gate.py scaling.json --baseline BENCH_scaling.json \\
      --flat bytes_per_node:4.0

--flat COUNTER:FACTOR additionally checks a per-row counter for flatness
across every row that carries it: max/min must not exceed FACTOR. Used to
pin the O(N)-memory claim (bytes per node must not grow with machine size).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_report(path: pathlib.Path) -> dict[str, float]:
    """Map benchmark name -> measured items_per_second from one report."""
    with open(path) as f:
        doc = json.load(f)
    plain: dict[str, float] = {}
    median: dict[str, float] = {}
    for row in doc.get("benchmarks", []):
        ips = row.get("items_per_second")
        if ips is None:
            continue
        if row.get("run_type") == "aggregate":
            if row.get("aggregate_name") == "median":
                median[row["run_name"]] = ips
        else:
            plain[row["name"]] = ips
    # Median (stable under noise) wins over the raw runs it summarizes.
    return {**plain, **median}


def load_counter(paths: list[pathlib.Path], counter: str) -> dict[str, float]:
    """Map benchmark name -> value of a custom per-row counter."""
    values: dict[str, float] = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for row in doc.get("benchmarks", []):
            if row.get("run_type") == "aggregate":
                continue
            if isinstance(row.get(counter), (int, float)):
                values[row["name"]] = float(row[counter])
    return values


def load_baseline(path: pathlib.Path) -> tuple[str, dict[str, float]]:
    """Latest entry's (label, name -> items_per_second) from BENCH_kernel.json."""
    with open(path) as f:
        doc = json.load(f)
    entries = doc.get("entries", [])
    if not entries:
        sys.exit(f"perf_gate: no entries in {path}")
    latest = entries[-1]
    label = f"{latest.get('date', '?')} ({latest.get('commit', '?')})"
    baseline = {
        name: rec["items_per_second"]
        for name, rec in latest.get("benchmarks", {}).items()
        if "items_per_second" in rec
    }
    return label, baseline


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("reports", nargs="+", type=pathlib.Path,
                        help="Google Benchmark JSON report files")
    parser.add_argument("--baseline", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent
                        / "BENCH_kernel.json")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional drop (default 0.10 = 10%%)")
    parser.add_argument("--pair", action="append", default=[],
                        metavar="INSTR=BASE",
                        help="gate benchmark INSTR against benchmark BASE "
                             "from the same reports (repeatable)")
    parser.add_argument("--pair-tolerance", type=float, default=0.03,
                        help="allowed fractional drop for --pair gates "
                             "(default 0.03 = 3%%)")
    parser.add_argument("--flat", action="append", default=[],
                        metavar="COUNTER:FACTOR",
                        help="require a per-row counter's max/min across all "
                             "rows to stay below FACTOR (repeatable)")
    args = parser.parse_args()

    label, baseline = load_baseline(args.baseline)
    measured: dict[str, float] = {}
    for report in args.reports:
        for name, ips in load_report(report).items():
            # Noise only ever slows a run down, so when a benchmark appears
            # in several reports (repeat-and-gate-best), the fastest
            # observation is the least noisy one.
            measured[name] = max(ips, measured.get(name, 0.0))
    if not measured:
        sys.exit("perf_gate: reports contained no items_per_second rows")

    print(f"perf_gate: baseline entry {label}")
    failures = []
    gated = 0
    for name in sorted(measured):
        now = measured[name]
        then = baseline.get(name)
        if then is None:
            print(f"  [new ] {name}: {now / 1e6:.2f}M items/s "
                  "(not in baseline; add it to BENCH_kernel.json)")
            continue
        gated += 1
        ratio = now / then
        verdict = "ok  " if ratio >= 1.0 - args.tolerance else "FAIL"
        print(f"  [{verdict}] {name}: {now / 1e6:.2f}M vs {then / 1e6:.2f}M "
              f"items/s ({ratio:.2f}x)")
        if verdict == "FAIL":
            failures.append(name)

    for pair in args.pair:
        instr_name, sep, base_name = pair.partition("=")
        if not sep:
            sys.exit(f"perf_gate: --pair wants INSTR=BASE, got '{pair}'")
        try:
            instr, base = measured[instr_name], measured[base_name]
        except KeyError as missing:
            sys.exit(f"perf_gate: --pair benchmark {missing} not in reports "
                     f"(have: {', '.join(sorted(measured))})")
        ratio = instr / base
        verdict = "ok  " if ratio >= 1.0 - args.pair_tolerance else "FAIL"
        print(f"  [{verdict}] {instr_name}: {ratio:.3f}x of {base_name} "
              f"(floor {1.0 - args.pair_tolerance:.2f}x)")
        if verdict == "FAIL":
            failures.append(pair)

    for flat in args.flat:
        counter, sep, factor_text = flat.partition(":")
        if not sep:
            sys.exit(f"perf_gate: --flat wants COUNTER:FACTOR, got '{flat}'")
        factor = float(factor_text)
        values = load_counter(args.reports, counter)
        if len(values) < 2:
            sys.exit(f"perf_gate: --flat counter '{counter}' present in "
                     f"{len(values)} row(s); need at least 2 to compare")
        lo_name = min(values, key=values.get)
        hi_name = max(values, key=values.get)
        ratio = values[hi_name] / values[lo_name] if values[lo_name] else float("inf")
        verdict = "ok  " if ratio <= factor else "FAIL"
        print(f"  [{verdict}] {counter}: {values[hi_name]:.0f} ({hi_name}) / "
              f"{values[lo_name]:.0f} ({lo_name}) = {ratio:.2f}x "
              f"(ceiling {factor:.2f}x)")
        if verdict == "FAIL":
            failures.append(flat)

    if gated == 0:
        sys.exit("perf_gate: no benchmark overlapped the baseline entry -- "
                 "name drift? refresh BENCH_kernel.json")
    if failures:
        print(f"perf_gate: {len(failures)} regression(s) beyond "
              f"{args.tolerance:.0%}: {', '.join(failures)}")
        return 1
    print(f"perf_gate: {gated} benchmark(s) within {args.tolerance:.0%} "
          "of the record")
    return 0


if __name__ == "__main__":
    sys.exit(main())
